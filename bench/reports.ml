(* Experiment reports: one entry per table and figure of the paper's
   evaluation (see DESIGN.md section 4 and EXPERIMENTS.md).  Budgets are
   controlled by the RFLOOR_BENCH_BUDGET environment variable (seconds,
   default 30). *)

open Device

(* Memoized so a malformed RFLOOR_BENCH_BUDGET warns once per process,
   not once per report.  Mirrors Parallel_bb.workers_from_env: garbage
   falls back to the default with a diagnostic, non-positive values
   clamp to 1 second. *)
let budget =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some b -> b
    | None ->
      let module D = Rfloor_diag.Diagnostic in
      let warn d = Format.eprintf "%a@." D.pp d in
      let default = 30. in
      let b =
        match Sys.getenv_opt "RFLOOR_BENCH_BUDGET" with
        | None -> default
        | Some s -> (
          let s = String.trim s in
          match float_of_string_opt s with
          | Some b when b > 0. && Float.is_finite b -> b
          | Some b ->
            warn
              (D.diagf ~code:"RF304" D.Warning (D.Env "RFLOOR_BENCH_BUDGET")
                 "%g is not a positive number of seconds; clamping to 1s" b);
            1.
          | None ->
            warn
              (D.diagf ~code:"RF304" D.Warning (D.Env "RFLOOR_BENCH_BUDGET")
                 "%S does not parse as seconds; using the default %gs" s
                 default);
            default)
      in
      memo := Some b;
      b

(* RFLOOR_WORKERS parallelizes every MILP solve in the reports. *)
let workers () = Milp.Parallel_bb.workers_from_env ()

let line fmt = Printf.printf (fmt ^^ "\n%!")

let header title =
  line "";
  line "==== %s ====" title

let fx70t = lazy (Partition.columnar_exn Devices.virtex5_fx70t)

(* ------------------------------------------------------------------ *)

let fig1 () =
  header "Figure 1: compatible and non-compatible areas";
  let part = Partition.columnar_exn Devices.fig1 in
  let marks =
    List.map (fun (name, r) -> (r, name.[0])) Devices.fig1_areas
  in
  print_endline (Grid.render ~marks Devices.fig1);
  List.iter
    (fun (na, ra) ->
      List.iter
        (fun (nb, rb) ->
          if na < nb then
            line "  %s ~ %s : %s" na nb
              (if Compat.compatible part ra rb then "compatible"
               else "NOT compatible"))
        Devices.fig1_areas)
    Devices.fig1_areas;
  line "  (paper: A ~ B compatible, A ~ C not: same shape but different";
  line "   relative positioning of tile types)"

let fig2 () =
  header "Figure 2: columnar partitioning with forbidden areas";
  line "original device ('#' = hard processor tiles):";
  print_endline (Grid.render Devices.fig2);
  let part = Partition.columnar_exn Devices.fig2 in
  line "columnar portions after step 1 tile replacement:";
  Format.printf "%a@." Partition.pp part;
  line "Property .3 (adjacent portions differ): %b"
    (Partition.check_adjacent_types_differ part);
  line "Property .4 (ordered, disjoint, covering): %b"
    (Partition.check_cover_disjoint part)

let fig3 () =
  header "Figure 3: offset variables o(n,p) and coverage k(n,p)";
  let part = Partition.columnar_exn Devices.fig3 in
  let rect = Devices.fig3_region in
  print_endline (Grid.render ~marks:[ (rect, 'n') ] Devices.fig3);
  let spec =
    Spec.make ~name:"fig3" [ { Spec.r_name = "n"; demand = [ (Resource.Clb, 1) ] } ]
  in
  let model = Rfloor.Model.build part spec in
  let plan =
    Floorplan.make [ { Floorplan.p_region = "n"; p_rect = rect } ] []
  in
  let x = Rfloor.Model.encode model plan in
  (match Milp.Lp.validate (Rfloor.Model.lp model) x with
  | Ok () -> ()
  | Error e -> line "  MODEL INCONSISTENCY: %s" e);
  let ind = Rfloor.Model.portion_indicators model "n" x in
  line "  p      : %s"
    (String.concat " " (List.init (Array.length ind) (fun i -> string_of_int (i + 1))));
  line "  k(n,p) : %s"
    (String.concat " "
       (Array.to_list (Array.map (fun (k, _) -> string_of_int (int_of_float k)) ind)));
  line "  o(n,p) : %s"
    (String.concat " "
       (Array.to_list (Array.map (fun (_, o) -> string_of_int (int_of_float o)) ind)));
  line "  (paper: region covering portions 2-4 has k = 0 1 1 1 0 and o2 = 1)"

let table1 () =
  header "Table I: resource requirements for the SDR design";
  let frames = Grid.frames Devices.virtex5_fx70t in
  line "  %-18s %9s %10s %9s %8s" "Region" "CLB tiles" "BRAM tiles" "DSP tiles"
    "# Frames";
  let totals = ref (0, 0, 0, 0) in
  List.iter
    (fun (name, c, b, d, f) ->
      let tc, tb, td, tf = !totals in
      totals := (tc + c, tb + b, td + d, tf + f);
      line "  %-18s %9d %10d %9d %8d" name c b d f)
    (Sdr.table1 ~frames);
  let tc, tb, td, tf = !totals in
  line "  %-18s %9d %10d %9d %8d" "Total" tc tb td tf;
  line "  (paper Table I: totals 104 / 5 / 11 / 4202)"

let feasibility () =
  header "Section VI feasibility analysis: one free-compatible area per region";
  let part = Lazy.force fx70t in
  let opts =
    { Search.Engine.default_options with time_limit = Some (budget ()) }
  in
  List.iter
    (fun name ->
      let spec = Sdr.feasibility_variant name in
      let r = Search.Engine.feasible ~options:opts part spec in
      let verdict =
        match (r.Search.Engine.plan, r.Search.Engine.optimal) with
        | Some _, _ -> "feasible"
        | None, true -> "INFEASIBLE (proven)"
        | None, false -> "unknown (budget)"
      in
      line "  %-18s %-20s (%d nodes, %.2fs)" name verdict r.Search.Engine.nodes
        r.Search.Engine.elapsed)
    Sdr.module_names;
  line "  (paper: no solution exists for Matched Filter and Video Decoder;";
  line "   Carrier Recovery, Demodulator, Signal Decoder are relocatable)"

type t2row = {
  algo : string;
  design : string;
  fc : string;
  wasted : string;
  note : string;
}

let table2_rows () =
  let part = Lazy.force fx70t in
  let opts =
    { Search.Engine.default_options with time_limit = Some (budget ()) }
  in
  let vf = Baselines.Vipin_fahmy.solve part Sdr.design in
  let row_vf =
    {
      algo = "[8]-style heuristic";
      design = "SDR";
      fc = "0";
      wasted =
        (match vf.Baselines.Vipin_fahmy.wasted with
        | Some w -> string_of_int w
        | None -> "-");
      note = "kernel tessellation";
    }
  in
  let run label spec =
    let r = Search.Engine.solve ~options:opts part spec in
    ( r,
      {
        algo = "PA (exact engine)";
        design = label;
        fc =
          (match r.Search.Engine.plan with
          | Some p -> string_of_int (Floorplan.fc_count p)
          | None -> "-");
        wasted =
          (match r.Search.Engine.wasted with
          | Some w -> string_of_int w
          | None -> "-");
        note = (if r.Search.Engine.optimal then "optimal" else "best found");
      } )
  in
  let r_sdr, row_sdr = run "SDR" Sdr.design in
  let row_sdr =
    { row_sdr with algo = "[10]-equivalent"; note = row_sdr.note ^ ", no relocation" }
  in
  let _, row_sdr2 = run "SDR2" Sdr.sdr2 in
  let _, row_sdr3 = run "SDR3" Sdr.sdr3 in
  (r_sdr, [ row_vf; row_sdr; row_sdr2; row_sdr3 ])

let table2 () =
  header "Table II: comparison of floorplan solutions (our device model)";
  let _, rows = table2_rows () in
  line "  %-22s %-6s %-22s %-13s %s" "Algorithm" "Design" "Free-compatible areas"
    "Wasted frames" "Note";
  List.iter
    (fun r -> line "  %-22s %-6s %-22s %-13s %s" r.algo r.design r.fc r.wasted r.note)
    rows;
  line "";
  line "  paper (real XC5VFX70T): [8] SDR 0 fc / 466 wasted; [10] SDR 0 / 306;";
  line "  PA SDR2 6 / 306; PA SDR3 9 / 346.";
  line "  Shape check: heuristic > MILP; SDR2 matches SDR; SDR3 costs a little more."

let render_solution title spec =
  header title;
  let part = Lazy.force fx70t in
  let opts =
    { Search.Engine.default_options with time_limit = Some (budget ()) }
  in
  let r = Search.Engine.solve ~options:opts part spec in
  match r.Search.Engine.plan with
  | None -> line "  no solution within budget"
  | Some plan ->
    (match Floorplan.validate part spec plan with
    | Ok () -> ()
    | Error es -> List.iter (fun e -> line "  INVALID: %s" e) es);
    line "wasted frames = %s, wire length = %s, free-compatible areas = %d%s"
      (match r.Search.Engine.wasted with Some w -> string_of_int w | None -> "-")
      (match r.Search.Engine.wirelength with
      | Some w -> Printf.sprintf "%.0f" w
      | None -> "-")
      (Floorplan.fc_count plan)
      (if r.Search.Engine.optimal then "" else " (not proven optimal)");
    print_endline (Floorplan.render part plan)

let fig4 () = render_solution "Figure 4: SDR2 floorplan (6 free-compatible areas)" Sdr.sdr2
let fig5 () = render_solution "Figure 5: SDR3 floorplan (9 free-compatible areas)" Sdr.sdr3

(* ------------------------------------------------------------------ *)
(* MILP cross-checks and ablations on reduced instances *)

let toy_spec =
  lazy
    (let r name demand = { Spec.r_name = name; demand } in
     Spec.make ~name:"toy"
       ~nets:(Spec.chain_nets ~weight:1. [ "R1"; "R2" ])
       ~relocs:[ { Spec.target = "R1"; copies = 1; mode = Spec.Hard } ]
       [
         r "R1" [ (Resource.Clb, 2); (Resource.Bram, 1) ];
         r "R2" [ (Resource.Clb, 2); (Resource.Dsp, 1) ];
       ])

let milp () =
  header "MILP engine vs exact combinatorial engine (mini device)";
  let part = Partition.columnar_exn Devices.mini in
  let spec = Lazy.force toy_spec in
  let s = Search.Engine.solve part spec in
  let opts =
    Rfloor.Solver.Options.make ~time_limit:(budget ())
      ~workers:(workers ()) ()
  in
  let m = Rfloor.Solver.solve ~options:opts part spec in
  line "  search : wasted=%s wl=%s optimal=%b"
    (match s.Search.Engine.wasted with Some w -> string_of_int w | None -> "-")
    (match s.Search.Engine.wirelength with
    | Some w -> Printf.sprintf "%.2f" w
    | None -> "-")
    s.Search.Engine.optimal;
  line "  milp O : %s" (Format.asprintf "%a" Rfloor.Solver.pp_outcome m);
  (match (s.Search.Engine.wasted, m.Rfloor.Solver.wasted) with
  | Some a, Some b when a = b -> line "  wasted frames agree: %d" a
  | Some a, Some b -> line "  MISMATCH: search %d vs milp %d" a b
  | _ -> line "  (incomparable)");
  let lp_text = Rfloor.Solver.export_lp part spec in
  line "  LP export: %d lines (CPLEX LP format; also see bench artifacts)"
    (List.length (String.split_on_char '\n' lp_text))

let ablation () =
  header "Ablations (mini device)";
  let part = Partition.columnar_exn Devices.mini in
  let spec = Lazy.force toy_spec in
  let b = budget () in
  let run label options =
    let o = Rfloor.Solver.solve ~options part spec in
    line "  %-28s %s" label (Format.asprintf "%a" Rfloor.Solver.pp_outcome o)
  in
  let base =
    Rfloor.Solver.Options.make ~time_limit:b ~workers:(workers ()) ()
  in
  run "O, relocation constraint" base;
  run "HO (search seed)"
    {
      base with
      strategy =
        Rfloor.Solver.Strategy.milp ~workers:(workers ())
          ~engine:(Rfloor.Solver.Ho None) ();
    };
  let soft =
    Spec.with_relocs spec [ { Spec.target = "R1"; copies = 1; mode = Spec.Soft 1. } ]
  in
  let o =
    Rfloor.Solver.solve
      ~options:{ base with objective_mode = Rfloor.Solver.Weighted Rfloor.Objective.default_weights }
      part soft
  in
  line "  %-28s %s" "relocation as a metric" (Format.asprintf "%a" Rfloor.Solver.pp_outcome o);
  run "paper-literal l bounds" { base with paper_literal_l = true };
  run "cold start (no warm seed)"
    {
      base with
      strategy =
        Rfloor.Solver.Strategy.milp ~workers:(workers ()) ~warm_start:false ();
    };
  let sa = Baselines.Annealing.solve part spec in
  line "  %-28s wasted=%s wl=%s (no relocation awareness)" "SA baseline [9]-style"
    (match sa.Baselines.Annealing.wasted with Some w -> string_of_int w | None -> "-")
    (match sa.Baselines.Annealing.wirelength with
    | Some w -> Printf.sprintf "%.2f" w
    | None -> "-")

let runtime () =
  header "Runtime: what the reserved areas buy (paper's Section I motivation)";
  let part = Lazy.force fx70t in
  let opts =
    { Search.Engine.default_options with time_limit = Some (budget ()) }
  in
  match (Search.Engine.solve ~options:opts part Sdr.sdr2).Search.Engine.plan with
  | None -> line "  no SDR2 floorplan within budget"
  | Some plan ->
    let requests =
      List.concat
        (List.mapi
           (fun i region ->
             [
               { Runtime.Reconfig.at = 50. *. float_of_int i; r_region = region; r_mode = "alt" };
               { Runtime.Reconfig.at = 500. +. (50. *. float_of_int i); r_region = region; r_mode = "base" };
             ])
           Sdr.relocatable)
    in
    let run policy =
      match Runtime.Reconfig.simulate part Sdr.sdr2 plan policy requests with
      | Ok (_, stats) -> stats
      | Error e -> failwith e
    in
    let s1 = run Runtime.Reconfig.Reload_in_place in
    let s2 = run Runtime.Reconfig.Relocate_prefetch in
    line "  %-34s total downtime %8.1f us, worst %7.1f us" "reload in place"
      s1.Runtime.Reconfig.total_downtime s1.Runtime.Reconfig.worst_downtime;
    line "  %-34s total downtime %8.1f us, worst %7.1f us"
      "prefetch into reserved areas" s2.Runtime.Reconfig.total_downtime
      s2.Runtime.Reconfig.worst_downtime;
    line "  downtime reduction: %.0fx"
      (s1.Runtime.Reconfig.total_downtime
      /. max 1e-9 s2.Runtime.Reconfig.total_downtime);
    let modes = List.map (fun r -> (r, 4)) Sdr.relocatable in
    line "  stored bitstreams (4 modes/module): %d without relocation filter, %d with"
      (Runtime.Reconfig.stored_bitstreams part plan ~modes_per_region:modes
         ~relocatable:false)
      (Runtime.Reconfig.stored_bitstreams part plan ~modes_per_region:modes
         ~relocatable:true)

let scaling () =
  header "Scaling: solve effort vs device size and relocation copies";
  (* device-width sweep: a synthetic columnar device grown by repeating
     a CLB/BRAM/CLB/DSP kernel, fixed 3-region design *)
  let clb = Resource.tile_type Resource.Clb in
  let bram = Resource.tile_type Resource.Bram in
  let dsp = Resource.tile_type Resource.Dsp in
  let device width =
    let kernel = [ clb; clb; bram; clb; clb; dsp ] in
    let rec take n l = if n = 0 then [] else
      match l with [] -> take n kernel | x :: r -> x :: take (n - 1) r in
    Grid.of_columns ~name:(Printf.sprintf "synth%d" width) ~rows:6 (take width [])
  in
  let spec =
    Spec.make ~name:"scale"
      ~nets:(Spec.chain_nets [ "A"; "B"; "C" ])
      ~relocs:[ { Spec.target = "A"; copies = 1; mode = Spec.Hard } ]
      [
        { Spec.r_name = "A"; demand = [ (Resource.Clb, 4); (Resource.Bram, 1) ] };
        { Spec.r_name = "B"; demand = [ (Resource.Clb, 3); (Resource.Dsp, 2) ] };
        { Spec.r_name = "C"; demand = [ (Resource.Clb, 6) ] };
      ]
  in
  line "  exact engine vs device width (3 regions + 1 area):";
  List.iter
    (fun width ->
      let part = Partition.columnar_exn (device width) in
      let opts =
        { Search.Engine.default_options with time_limit = Some (budget ()) }
      in
      let r = Search.Engine.solve ~options:opts part spec in
      line "    width %3d: wasted %-5s nodes %9d  %6.2fs%s" width
        (match r.Search.Engine.wasted with Some w -> string_of_int w | None -> "-")
        r.Search.Engine.nodes r.Search.Engine.elapsed
        (if r.Search.Engine.optimal then "" else "  (budget)"))
    [ 12; 18; 24; 36; 48 ];
  line "  exact engine vs requested copies per relocatable region (FX70T, SDR):";
  let part = Lazy.force fx70t in
  List.iter
    (fun copies ->
      let spec = if copies = 0 then Sdr.design else Sdr.with_copies copies in
      let opts =
        {
          Search.Engine.default_options with
          time_limit = Some (budget ());
          optimize_wirelength = false;
        }
      in
      let r = Search.Engine.solve ~options:opts part spec in
      line "    %d copies: wasted %-5s nodes %9d  %6.2fs%s" copies
        (match r.Search.Engine.wasted with Some w -> string_of_int w | None -> "-")
        r.Search.Engine.nodes r.Search.Engine.elapsed
        (if r.Search.Engine.optimal then "" else "  (budget)"))
    [ 0; 1; 2; 3 ];
  line "  MILP O vs HO (mini device, toy design):";
  let partm = Partition.columnar_exn Devices.mini in
  let toy = Lazy.force toy_spec in
  List.iter
    (fun (label, engine) ->
      let o =
        Rfloor.Solver.solve
          ~options:
            (Rfloor.Solver.Options.make ~time_limit:(budget ())
               ~workers:(workers ()) ~engine ())
          partm toy
      in
      line "    %-4s nodes %6d simplex iters %8d  %6.2fs" label
        o.Rfloor.Solver.nodes o.Rfloor.Solver.simplex_iterations
        o.Rfloor.Solver.elapsed)
    [ ("O", Rfloor.Solver.O); ("HO", Rfloor.Solver.Ho None) ]

let all () =
  fig1 ();
  fig2 ();
  fig3 ();
  table1 ();
  feasibility ();
  table2 ();
  fig4 ();
  fig5 ();
  milp ();
  ablation ();
  runtime ();
  scaling ()

let by_name = function
  | "fig1" -> Some fig1
  | "fig2" -> Some fig2
  | "fig3" -> Some fig3
  | "table1" -> Some table1
  | "feasibility" -> Some feasibility
  | "table2" -> Some table2
  | "fig4" -> Some fig4
  | "fig5" -> Some fig5
  | "milp" -> Some milp
  | "ablation" -> Some ablation
  | "runtime" -> Some runtime
  | "scaling" -> Some scaling
  | "all" -> Some all
  | _ -> None

let names =
  [
    "fig1"; "fig2"; "fig3"; "table1"; "feasibility"; "table2"; "fig4"; "fig5";
    "milp"; "ablation"; "runtime"; "scaling"; "all";
  ]
