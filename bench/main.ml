(* Benchmark harness: one bechamel micro-benchmark per table/figure
   regeneration plus the full experiment reports.

     dune exec bench/main.exe                 -- benches + all reports
     dune exec bench/main.exe -- --report X   -- one report (see --list)
     dune exec bench/main.exe -- --bench-only
     dune exec bench/main.exe -- --parallel-only
     dune exec bench/main.exe -- --portfolio-only
     dune exec bench/main.exe -- --artifact LABEL [--artifact-dir D]
                                 [--instances quick|fx70t]
                                              -- write BENCH_LABEL.json for
                                                 rfloor_cli bench-compare
     RFLOOR_BENCH_BUDGET=60 ...               -- per-solve budget, seconds
     RFLOOR_WORKERS=4 ...                     -- parallel B&B worker domains *)

open Bechamel
open Toolkit

let quick_part = lazy (Device.Partition.columnar_exn Device.Devices.mini)
let fx70t = lazy (Device.Partition.columnar_exn Device.Devices.virtex5_fx70t)

let bench_tests () =
  let part = Lazy.force quick_part in
  let fx = Lazy.force fx70t in
  let frames = Device.Grid.frames Device.Devices.virtex5_fx70t in
  let fig1_areas = Device.Devices.fig1_areas in
  let fig1_part = Device.Partition.columnar_exn Device.Devices.fig1 in
  let toy_spec =
    Device.Spec.make ~name:"bench-toy"
      [
        { Device.Spec.r_name = "R1"; demand = [ (Device.Resource.Clb, 2) ] };
        { Device.Spec.r_name = "R2"; demand = [ (Device.Resource.Dsp, 1) ] };
      ]
  in
  [
    Test.make ~name:"fig1:compatibility_check"
      (Staged.stage (fun () ->
           List.iter
             (fun (_, a) ->
               List.iter
                 (fun (_, b) ->
                   ignore (Device.Compat.compatible fig1_part a b))
                 fig1_areas)
             fig1_areas));
    Test.make ~name:"fig2:columnar_partitioning"
      (Staged.stage (fun () ->
           ignore (Device.Partition.columnar Device.Devices.fig2)));
    Test.make ~name:"fig3:model_build_encode"
      (Staged.stage (fun () ->
           let spec =
             Device.Spec.make ~name:"fig3"
               [ { Device.Spec.r_name = "n"; demand = [ (Device.Resource.Clb, 1) ] } ]
           in
           let p3 = Device.Partition.columnar_exn Device.Devices.fig3 in
           let model = Rfloor.Model.build p3 spec in
           let plan =
             Device.Floorplan.make
               [ { Device.Floorplan.p_region = "n"; p_rect = Device.Devices.fig3_region } ]
               []
           in
           ignore (Rfloor.Model.encode model plan)));
    Test.make ~name:"table1:frame_accounting"
      (Staged.stage (fun () -> ignore (Sdr.table1 ~frames)));
    Test.make ~name:"feasibility:carrier_recovery"
      (Staged.stage (fun () ->
           ignore
             (Search.Engine.feasible fx (Sdr.feasibility_variant Sdr.carrier_recovery))));
    Test.make ~name:"table2:heuristic_baseline"
      (Staged.stage (fun () ->
           ignore (Baselines.Vipin_fahmy.solve fx Sdr.design)));
    Test.make ~name:"table2:search_sdr_optimal"
      (Staged.stage (fun () ->
           let opts =
             { Search.Engine.default_options with optimize_wirelength = false }
           in
           ignore (Search.Engine.solve ~options:opts fx Sdr.design)));
    Test.make ~name:"fig4:candidate_enumeration"
      (Staged.stage (fun () ->
           List.iter
             (fun (r : Device.Spec.region) ->
               ignore (Search.Candidates.enumerate fx r.Device.Spec.demand))
             Sdr.design.Device.Spec.regions));
    Test.make ~name:"milp:toy_model_build"
      (Staged.stage (fun () -> ignore (Rfloor.Model.build part toy_spec)));
    Test.make ~name:"bitstream:synthesize_relocate"
      (Staged.stage (fun () ->
           let src = Device.Rect.make ~x:4 ~y:1 ~w:2 ~h:2 in
           let dst = Device.Rect.make ~x:4 ~y:3 ~w:2 ~h:2 in
           let img = Bitstream.Image.synthesize ~seed:7 part src in
           ignore (Bitstream.Relocate.relocate part ~src ~dst img)));
  ]

let run_benches () =
  let tests = bench_tests () in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "==== bechamel micro-benchmarks (one per table/figure) ====\n%!";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "  %-32s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        results)
    tests

(* Parallel branch-and-bound on the paper's evaluation workload: the
   FX70T relocation instance (SDR with 2 requested free-compatible
   areas per relocatable region), stage-1 objective.  Sequential and
   parallel runs get the same node budget, so when both exhaust it the
   wall-clock ratio is a direct speedup; if a run stops early (time
   limit, or optimality first) the node-throughput ratio is reported,
   which degenerates to the same number under equal node counts. *)
let run_parallel_speedup ?(trace_mode = `Off) ?metrics_registry () =
  let workers = max 4 (Milp.Parallel_bb.workers_from_env ()) in
  let budget = Reports.budget () in
  Printf.printf
    "\n==== parallel branch-and-bound (FX70T relocation instance, sdr2) ====\n%!";
  let sink, close_sink =
    match trace_mode with
    | `Off -> (Rfloor_trace.Sink.null, fun () -> ())
    | `Text -> (Rfloor_trace.Sink.text stderr, fun () -> ())
    | `Jsonl path -> Rfloor_trace.Sink.jsonl_file path
  in
  Fun.protect ~finally:close_sink @@ fun () ->
  let part = Lazy.force fx70t in
  (* one tracer per run so the phase/worker breakdown of the parallel
     run is not polluted by the sequential baseline *)
  let tracer_seq = Rfloor_trace.create ~sink () in
  let tracer_par = Rfloor_trace.create ~sink () in
  let model =
    Rfloor_trace.span tracer_par Rfloor_trace.Event.Build (fun () ->
        Rfloor.Model.build
          ~options:
            {
              Rfloor.Model.objective = Rfloor.Model.Wasted_frames_only;
              paper_literal_l = false;
              pair_relations = [];
              extra_waste_cap = None;
              cuts = true;
            }
          part Sdr.sdr2)
  in
  let lp = Rfloor.Model.lp model in
  let metrics =
    match metrics_registry with
    | Some reg -> reg  (* shared with --telemetry so /metrics sees the run *)
    | None -> Rfloor_metrics.Registry.create ()
  in
  let opts =
    {
      Milp.Branch_bound.default_options with
      time_limit = Some budget;
      node_limit = Some 400;
      priorities = Some (Rfloor.Model.branching_priorities model);
      metrics;
    }
  in
  (* cold baseline for the warm-start pivot comparison: same tree, no
     parent-basis dual re-solves, and its own registry so the counters
     printed below belong to the warm runs only *)
  let cold =
    Milp.Branch_bound.solve
      ~options:
        { opts with warm_lp = false; metrics = Rfloor_metrics.Registry.null }
      lp
  in
  let seq =
    Milp.Branch_bound.solve ~options:{ opts with trace = tracer_seq } lp
  in
  let par =
    Milp.Parallel_bb.solve
      ~options:{ opts with trace = tracer_par }
      ~workers lp
  in
  let show label (r : Milp.Branch_bound.result) =
    Printf.printf "  %-12s nodes %5d  simplex iters %8d  elapsed %6.2fs\n%!"
      label r.Milp.Branch_bound.nodes r.Milp.Branch_bound.simplex_iterations
      r.Milp.Branch_bound.elapsed
  in
  show "cold LP" cold;
  show "sequential" seq;
  show (Printf.sprintf "%d workers" workers) par;
  Printf.printf
    "  warm-start pivots: %d warm vs %d cold (%d saved across %d nodes)\n%!"
    seq.Milp.Branch_bound.simplex_iterations
    cold.Milp.Branch_bound.simplex_iterations
    (cold.Milp.Branch_bound.simplex_iterations
    - seq.Milp.Branch_bound.simplex_iterations)
    seq.Milp.Branch_bound.nodes;
  let counter name =
    Rfloor_metrics.Registry.Counter.value
      (Rfloor_metrics.Registry.counter metrics name)
  in
  Printf.printf
    "  lp counters (seq+par): %d factorizations, %d ft updates, %d warm starts\n%!"
    (counter "rfloor_lp_factorizations_total")
    (counter "rfloor_lp_ft_updates_total")
    (counter "rfloor_lp_warm_starts_total");
  let rate (r : Milp.Branch_bound.result) =
    float_of_int r.Milp.Branch_bound.nodes /. max 1e-9 r.Milp.Branch_bound.elapsed
  in
  let speedup = rate par /. rate seq in
  Printf.printf "  wall-clock speedup with %d workers: %.2fx%s\n%!" workers speedup
    (if speedup <= 1.0 then
       Printf.sprintf " (no gain: host exposes %d core%s)"
         (Domain.recommended_domain_count ())
         (if Domain.recommended_domain_count () = 1 then "" else "s")
     else "");
  (match (seq.Milp.Branch_bound.incumbent, par.Milp.Branch_bound.incumbent) with
  | Some (a, _), Some (b, _) ->
    Printf.printf "  objectives agree: %.4f vs %.4f\n%!" a b
  | _ -> ());
  (* machine-readable per-phase / per-worker breakdown of the parallel run *)
  let report =
    Rfloor_trace.report tracer_par ~nodes:par.Milp.Branch_bound.nodes
      ~simplex_iterations:par.Milp.Branch_bound.simplex_iterations
      ~elapsed:par.Milp.Branch_bound.elapsed
  in
  Printf.printf "  parallel-report: %s\n%!" (Rfloor_trace.Report.to_json report)

(* Racing strategy portfolio on the quick-bench relocation instance
   (the mini-device toy with 2 requested free-compatible copies, the
   smallest instance where the symmetry cuts fire).  The number that
   matters is total nodes: the combinatorial member proves stage-1
   optimality almost immediately and cancels the MILP member, so the
   portfolio's summed node count (B&B nodes + heuristic iterations)
   stays below milp:2 run to completion. *)
let run_portfolio_bench () =
  let part = Lazy.force quick_part in
  let spec =
    let r name demand = { Device.Spec.r_name = name; demand } in
    Device.Spec.make ~name:"portfolio-quick"
      ~nets:(Device.Spec.chain_nets ~weight:1. [ "R1"; "R2" ])
      ~relocs:[ { Device.Spec.target = "R1"; copies = 2; mode = Device.Spec.Soft 1. } ]
      [
        r "R1" [ (Device.Resource.Clb, 2); (Device.Resource.Bram, 1) ];
        r "R2" [ (Device.Resource.Clb, 2); (Device.Resource.Dsp, 1) ];
      ]
  in
  let budget = Reports.budget () in
  Printf.printf
    "\n==== strategy portfolio (mini relocation instance, 2 copies) ====\n%!";
  let solve strategy =
    let metrics = Rfloor_metrics.Registry.create () in
    let options =
      Rfloor.Solver.Options.make ~time_limit:budget ~strategy ~metrics ()
    in
    (Rfloor.Solver.solve ~options part spec, metrics)
  in
  let counter ?labels metrics name =
    Rfloor_metrics.Registry.Counter.value
      (Rfloor_metrics.Registry.counter metrics ?labels name)
  in
  let milp2 = Rfloor.Solver.Strategy.milp ~workers:2 () in
  let members = [ milp2; Rfloor.Solver.Strategy.combinatorial () ] in
  let portfolio = Rfloor.Solver.Strategy.portfolio members in
  let show strategy (o, metrics) =
    Printf.printf "  %-36s %-10s nodes %6d  elapsed %6.2fs  cuts %d\n%!"
      (Rfloor.Solver.Strategy.to_string strategy)
      (match o.Rfloor.Solver.status with
      | Rfloor.Solver.Optimal -> "optimal"
      | Rfloor.Solver.Feasible -> "feasible"
      | Rfloor.Solver.Infeasible -> "infeasible"
      | Rfloor.Solver.Unknown -> "unknown")
      o.Rfloor.Solver.nodes o.Rfloor.Solver.elapsed
      (counter metrics "rfloor_cuts_applied_total")
  in
  let alone = solve milp2 in
  let raced = solve portfolio in
  show milp2 alone;
  show portfolio raced;
  let _, race_metrics = raced in
  List.iter
    (fun s ->
      let label = Rfloor.Solver.Strategy.to_string s in
      Printf.printf "  wins[%-13s] %d\n%!" label
        (counter race_metrics "rfloor_portfolio_wins_total"
           ~labels:[ ("strategy", label) ]))
    members;
  let nodes (o, _) = o.Rfloor.Solver.nodes in
  Printf.printf "  portfolio vs milp:2 nodes: %d vs %d (%s)\n%!" (nodes raced)
    (nodes alone)
    (if nodes raced < nodes alone then "portfolio explored less"
     else "no node saving this run")

let () =
  let args = Array.to_list Sys.argv in
  let rec find_report = function
    | "--report" :: name :: _ -> Some name
    | _ :: rest -> find_report rest
    | [] -> None
  in
  let rec find_trace = function
    | "--trace" :: v :: _ -> (
      match v with
      | "off" -> `Off
      | "text" -> `Text
      | v when String.length v > 6 && String.sub v 0 6 = "jsonl:" ->
        `Jsonl (String.sub v 6 (String.length v - 6))
      | v ->
        Printf.eprintf "bad --trace %s (expected off, text or jsonl:FILE)\n" v;
        exit 1)
    | _ :: rest -> find_trace rest
    | [] -> `Off
  in
  let trace_mode = find_trace args in
  let rec find_flag name = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> find_flag name rest
    | [] -> None
  in
  (* --telemetry PORT: expose /metrics, /healthz and /statusz for the
     duration of the run so a long bench can be watched live.  The
     registry is shared with the parallel-speedup run, so its LP and
     B&B series stream out while the solve is in flight. *)
  let telemetry =
    match find_flag "--telemetry" args with
    | None -> None
    | Some v -> (
      match int_of_string_opt v with
      | Some p -> Some p
      | None ->
        Printf.eprintf "bad --telemetry %s (expected a port number)\n" v;
        exit 1)
  in
  let telemetry_registry =
    match telemetry with
    | None -> None
    | Some _ ->
      let reg = Rfloor_metrics.Registry.create () in
      Rfloor_obsv.Build_info.register reg;
      Some reg
  in
  let server =
    match (telemetry, telemetry_registry) with
    | Some port, Some reg -> (
      let handlers =
        {
          Rfloor_obsv.Http.h_metrics =
            (fun () ->
              Rfloor_obsv.Build_info.touch_uptime reg;
              Rfloor_metrics.Registry.to_prometheus
                (Rfloor_metrics.Registry.snapshot reg));
          h_statusz = (fun () -> Rfloor_obsv.Statusz.render ());
        }
      in
      match Rfloor_obsv.Http.start ~registry:reg ~port handlers with
      | Ok srv ->
        Printf.eprintf "telemetry: listening on 127.0.0.1:%d\n%!"
          (Rfloor_obsv.Http.port srv);
        Some srv
      | Error d ->
        Format.eprintf "%a@." Rfloor_diag.Diagnostic.pp d;
        exit 1)
    | _ -> None
  in
  Fun.protect ~finally:(fun () -> Option.iter Rfloor_obsv.Http.stop server)
  @@ fun () ->
  let run_parallel_speedup () =
    run_parallel_speedup ~trace_mode ?metrics_registry:telemetry_registry ()
  in
  if List.mem "--list" args then
    List.iter print_endline Reports.names
  else
    match find_flag "--artifact" args with
    | Some label ->
      let dir = Option.value ~default:"." (find_flag "--artifact-dir" args) in
      let instances =
        match find_flag "--instances" args with
        | None | Some "quick" -> `Quick
        | Some "fx70t" -> `Fx70t
        | Some v ->
          Printf.eprintf "bad --instances %s (expected quick or fx70t)\n" v;
          exit 1
      in
      ignore (Artifacts.run ~label ~dir ~instances ())
    | None -> (
      match find_report args with
      | Some name -> (
        match Reports.by_name name with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown report %s; use --list\n" name;
          exit 1)
      | None ->
        if List.mem "--portfolio-only" args then
          run_portfolio_bench ()
        else if List.mem "--parallel-only" args then begin
          run_parallel_speedup ();
          run_portfolio_bench ()
        end
        else begin
          if not (List.mem "--report-only" args) then begin
            run_benches ();
            run_parallel_speedup ();
            run_portfolio_bench ()
          end;
          if not (List.mem "--bench-only" args) then Reports.all ()
        end)
