(* Persistent bench artifacts: run a pinned instance set, collect one
   Rfloor_metrics.Artifact entry per solve (headline numbers + the
   trace report + a metrics snapshot) and write BENCH_<label>.json.

   The "quick" set stays on the mini device on purpose: this is the
   bench-smoke gate and must finish in seconds on a 1-core container.
   The "fx70t" set exercises the paper's real device through the exact
   combinatorial engine (the MILP root LP alone is far beyond any smoke
   budget there) and is only for manual, long-budget runs. *)

open Device
module R = Rfloor_metrics.Registry
module A = Rfloor_metrics.Artifact
module Json = Rfloor_metrics.Json

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let status_string = function
  | Rfloor.Solver.Optimal -> "optimal"
  | Rfloor.Solver.Feasible -> "feasible"
  | Rfloor.Solver.Infeasible -> "infeasible"
  | Rfloor.Solver.Unknown -> "unknown"

let parse_report r =
  match Json.parse (Rfloor_trace.Report.to_json r) with
  | Ok j -> Some j
  | Error _ -> None

(* ---- quick set: mini-device toys, milliseconds each ---- *)

let toy_spec =
  lazy
    (let r name demand = { Spec.r_name = name; demand } in
     Spec.make ~name:"artifact-toy"
       ~nets:(Spec.chain_nets ~weight:1. [ "R1"; "R2" ])
       ~relocs:[ { Spec.target = "R1"; copies = 1; mode = Spec.Hard } ]
       [
         r "R1" [ (Resource.Clb, 2); (Resource.Bram, 1) ];
         r "R2" [ (Resource.Clb, 2); (Resource.Dsp, 1) ];
       ])

let quick_entry ~budget ~workers (name, objective_mode, warm_lp) =
  let part = Partition.columnar_exn Devices.mini in
  let spec = Lazy.force toy_spec in
  let metrics = R.create () in
  let options =
    Rfloor.Solver.Options.make ~time_limit:budget ~workers ~metrics
      ~objective_mode ~warm_lp ()
  in
  let o = Rfloor.Solver.solve ~options part spec in
  {
    A.e_instance = name;
    e_status = status_string o.Rfloor.Solver.status;
    e_objective = o.Rfloor.Solver.objective_value;
    e_wasted = Option.map float_of_int o.Rfloor.Solver.wasted;
    e_nodes = o.Rfloor.Solver.nodes;
    e_simplex_iterations = o.Rfloor.Solver.simplex_iterations;
    e_elapsed = o.Rfloor.Solver.elapsed;
    e_report = parse_report o.Rfloor.Solver.report;
    e_metrics = Some (R.to_json_value (R.snapshot metrics));
  }

(* reloc-twin-cuts / reloc-twin-nocuts: the symmetry/packing-cut twin.
   Three requested copies of R1's area make the copies interchangeable,
   so the lexicographic symmetry chains actually bite.  The device is a
   DSP column next to a CLB column: every copy competes for the single
   DSP column, which is exactly the regime where the per-portion
   packing rows tighten the root relaxation.  A single-stage
   (wasted-frames) branch-and-bound run with and without the cut
   families records the node saving in every artifact.  The runs go
   through Model.build + Branch_bound.solve directly so both prove
   optimality well inside the smoke budget and the node counts compare
   tree sizes, not time-sliced throughput. *)
let reloc_grid =
  lazy
    (Grid.of_columns ~name:"reloc-twin" ~rows:4
       [ Resource.tile_type Resource.Dsp; Resource.tile_type Resource.Clb ])

let reloc_spec =
  lazy
    (Spec.make ~name:"artifact-reloc"
       ~relocs:[ { Spec.target = "R1"; copies = 3; mode = Spec.Soft 1. } ]
       [ { Spec.r_name = "R1"; demand = [ (Resource.Dsp, 2) ] } ])

let cuts_entry ~budget (name, cuts) =
  let part = Partition.columnar_exn (Lazy.force reloc_grid) in
  let spec = Lazy.force reloc_spec in
  let metrics = R.create () in
  let model =
    Rfloor.Model.build
      ~options:
        {
          Rfloor.Model.objective = Rfloor.Model.Wasted_frames_only;
          paper_literal_l = false;
          pair_relations = [];
          extra_waste_cap = None;
          cuts;
        }
      part spec
  in
  let r =
    Milp.Branch_bound.solve
      ~options:
        {
          Milp.Branch_bound.default_options with
          time_limit = Some budget;
          priorities = Some (Rfloor.Model.branching_priorities model);
          metrics;
        }
      (Rfloor.Model.lp model)
  in
  ignore
    (R.Counter.add
       (R.counter metrics "rfloor_cuts_applied_total")
       (Rfloor.Model.cuts_applied model));
  {
    A.e_instance = name;
    e_status =
      (match r.Milp.Branch_bound.status with
      | Milp.Branch_bound.Optimal -> "optimal"
      | Milp.Branch_bound.Feasible -> "feasible"
      | Milp.Branch_bound.Infeasible -> "infeasible"
      | Milp.Branch_bound.Unbounded -> "unbounded"
      | Milp.Branch_bound.Unknown -> "unknown");
    e_objective = Option.map fst r.Milp.Branch_bound.incumbent;
    e_wasted = Option.map fst r.Milp.Branch_bound.incumbent;
    e_nodes = r.Milp.Branch_bound.nodes;
    e_simplex_iterations = r.Milp.Branch_bound.simplex_iterations;
    e_elapsed = r.Milp.Branch_bound.elapsed;
    e_report = None;
    e_metrics = Some (R.to_json_value (R.snapshot metrics));
  }

(* online-mini-replay: the dynamic traffic shape — a seeded 100-event
   arrival/departure trace replayed against the online layout with the
   no-break defragmentation planner.  Status "ok" means every audit
   held: each move passed the relocation filter, non-moving frames
   came through byte-identical, and the incremental free-rectangle set
   matched the from-scratch recompute after every event.  e_nodes
   carries the event count, e_simplex_iterations the executed moves,
   e_objective the final fragmentation ratio. *)
let online_entry ~seed ~events name =
  let module W = Rfloor_online.Workload in
  let part = Partition.columnar_exn Devices.mini in
  let trace = W.generate ~seed ~events part in
  let t0 = Unix.gettimeofday () in
  let stats = W.replay part trace in
  let elapsed = Unix.gettimeofday () -. t0 in
  let metrics = R.create () in
  let add name v = R.Counter.add (R.counter metrics name) v in
  add "rfloor_online_adds_total"
    (stats.W.s_admitted + stats.W.s_defrag_admitted + stats.W.s_fallbacks);
  add "rfloor_online_admission_hits_total" stats.W.s_admitted;
  add "rfloor_online_defrags_total" (W.defrag_episodes stats);
  add "rfloor_online_moves_executed_total" stats.W.s_moves;
  add "rfloor_online_rejects_total" stats.W.s_rejected;
  add "rfloor_online_removes_total" stats.W.s_departed;
  R.Gauge.set
    (R.gauge metrics "rfloor_online_occupancy")
    (Rfloor_online.Layout.occupancy stats.W.s_final);
  R.Gauge.set
    (R.gauge metrics "rfloor_online_fragmentation")
    (Rfloor_online.Layout.fragmentation stats.W.s_final);
  {
    A.e_instance = name;
    e_status = (if stats.W.s_violations = [] then "ok" else "violated");
    e_objective = Some (Rfloor_online.Layout.fragmentation stats.W.s_final);
    e_wasted = None;
    e_nodes = stats.W.s_events;
    e_simplex_iterations = stats.W.s_moves;
    e_elapsed = elapsed;
    e_report = None;
    e_metrics = Some (R.to_json_value (R.snapshot metrics));
  }

(* mini-toy-lex runs twice, with and without LP warm starts: the pair
   of entries records the warm-vs-cold simplex-pivot comparison (and
   the rfloor_lp_*_total counters in e_metrics) in every artifact, so
   bench-compare history tracks the warm-start win. *)
let quick_entries ~budget ~workers () =
  List.map
    (quick_entry ~budget ~workers)
    [
      ("mini-toy-lex", Rfloor.Solver.Lexicographic, true);
      ("mini-toy-lex-coldlp", Rfloor.Solver.Lexicographic, false);
      ("mini-toy-feas", Rfloor.Solver.Feasibility_only, true);
      ( "mini-toy-weighted",
        Rfloor.Solver.Weighted Rfloor.Objective.default_weights,
        true );
    ]
  @ List.map
      (cuts_entry ~budget)
      [ ("reloc-twin-cuts", true); ("reloc-twin-nocuts", false) ]
  @ [ online_entry ~seed:2015 ~events:100 "online-mini-s2015-e100" ]

(* ---- fx70t set: the paper's evaluation workload, exact engine ---- *)

let fx70t_entry ~budget (name, spec) =
  let part = Partition.columnar_exn Devices.virtex5_fx70t in
  let opts =
    { Search.Engine.default_options with time_limit = Some budget }
  in
  let r = Search.Engine.solve ~options:opts part spec in
  {
    A.e_instance = name;
    e_status =
      (match (r.Search.Engine.plan, r.Search.Engine.optimal) with
      | Some _, true -> "optimal"
      | Some _, false -> "feasible"
      | None, true -> "infeasible"
      | None, false -> "unknown");
    e_objective = Option.map float_of_int r.Search.Engine.wasted;
    e_wasted = Option.map float_of_int r.Search.Engine.wasted;
    e_nodes = r.Search.Engine.nodes;
    e_simplex_iterations = 0;
    e_elapsed = r.Search.Engine.elapsed;
    e_report = None;
    e_metrics = None;
  }

let fx70t_entries ~budget () =
  List.map
    (fx70t_entry ~budget)
    [ ("fx70t-sdr", Sdr.design); ("fx70t-sdr2", Sdr.sdr2) ]

let run ~label ~dir ~instances () =
  let budget = Reports.budget () in
  let workers = Reports.workers () in
  let entries =
    match instances with
    | `Quick -> quick_entries ~budget ~workers ()
    | `Fx70t -> fx70t_entries ~budget ()
  in
  let artifact =
    {
      A.a_label = label;
      a_created = Unix.time ();
      a_git_rev = git_rev ();
      a_workers = workers;
      a_budget = budget;
      a_entries = entries;
    }
  in
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" label) in
  let text = A.to_string artifact in
  (* self-check before publishing: a malformed artifact would poison
     every later bench-compare against it *)
  (match A.validate text with
  | Ok _ -> ()
  | Error e -> failwith (Printf.sprintf "artifact failed self-validation: %s" e));
  let oc = open_out path in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d entries, budget %gs, %d workers, rev %s)\n%!"
    path (List.length entries) budget workers artifact.A.a_git_rev;
  path
