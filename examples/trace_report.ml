(* Observability walkthrough: watch a MILP solve through the typed
   event stream, then read the aggregated phase/worker report.

     dune exec examples/trace_report.exe

   Three sinks are demonstrated:
     - an in-memory ring buffer, inspected after the solve;
     - a JSONL file, validated with Rfloor_trace.validate_jsonl;
     - the report attached to every Solver.outcome, which aggregates
       the same metrics even when no sink is connected. *)

open Device

let spec =
  Spec.make ~name:"trace-demo"
    ~nets:(Spec.chain_nets ~weight:16. [ "filter"; "decoder" ])
    ~relocs:[ { Spec.target = "filter"; copies = 1; mode = Spec.Hard } ]
    [
      { Spec.r_name = "filter"; demand = [ (Resource.Clb, 2); (Resource.Bram, 1) ] };
      { Spec.r_name = "decoder"; demand = [ (Resource.Clb, 2); (Resource.Dsp, 1) ] };
    ]

let () =
  let part = Partition.columnar_exn Devices.mini in

  (* 1. Ring-buffer sink: capture every event in memory. *)
  let ring = Rfloor_trace.Ring.create ~capacity:4096 () in
  let options =
    Rfloor.Solver.Options.make ~time_limit:30.
      ~trace:(Rfloor_trace.Ring.sink ring) ()
  in
  let outcome = Rfloor.Solver.solve ~options part spec in
  let events = Rfloor_trace.Ring.events ring in
  Format.printf "solve finished: %a@." Rfloor.Solver.pp_outcome outcome;
  Format.printf "captured %d events (%d dropped)@." (List.length events)
    (Rfloor_trace.Ring.dropped ring);
  let incumbents =
    List.filter
      (fun (e : Rfloor_trace.Event.t) ->
        match e.Rfloor_trace.Event.payload with
        | Rfloor_trace.Event.Incumbent _ -> true
        | _ -> false)
      events
  in
  Format.printf "incumbent improvements:@.";
  List.iter
    (fun e -> Format.printf "  %a@." Rfloor_trace.Event.pp e)
    incumbents;

  (* 2. The aggregated report: phase timings, per-worker node counts.
     Its totals always equal outcome.nodes / simplex_iterations /
     elapsed, whether or not a sink was connected. *)
  Format.printf "@.%a@." Rfloor_trace.Report.pp outcome.Rfloor.Solver.report;
  assert (outcome.Rfloor.Solver.report.Rfloor_trace.Report.nodes
          = outcome.Rfloor.Solver.nodes);

  (* 3. JSONL sink: stream events to a file, then validate the schema
     and span balance — the same check `rfloor trace-validate` runs. *)
  let path = Filename.temp_file "rfloor_trace" ".jsonl" in
  let sink, close = Rfloor_trace.Sink.jsonl_file path in
  let opts2 =
    Rfloor.Solver.Options.make ~time_limit:30. ~trace:sink ()
  in
  ignore (Rfloor.Solver.solve ~options:opts2 part spec);
  close ();
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (match Rfloor_trace.validate_jsonl contents with
  | Ok n -> Format.printf "@.%s: %d events, schema valid@." path n
  | Error e -> Format.printf "@.%s: INVALID: %s@." path e);
  Sys.remove path
