(* Columnar partitioning walkthrough (Section III / Figure 2): how a
   device with hard blocks is split into columnar portions and
   forbidden areas, and what Properties .3/.4 give us.

     dune exec examples/partitioning.exe *)

open Device

let show name grid =
  Format.printf "--- %s ---@.%s@." name (Grid.render grid);
  match Partition.columnar grid with
  | Error d ->
    Format.printf "not columnar-partitionable: %a@.@."
      Rfloor_diag.Diagnostic.pp d
  | Ok part ->
    Format.printf "%a" Partition.pp part;
    Format.printf "Property .3 adjacent types differ: %b@."
      (Partition.check_adjacent_types_differ part);
    Format.printf "Property .4 ordered cover: %b@.@."
      (Partition.check_cover_disjoint part)

let () =
  (* the paper's Figure 2 example: two hard blocks *)
  show "figure-2 device" Devices.fig2;

  (* the FX70T model with its PowerPC block *)
  show "XC5VFX70T model" Devices.virtex5_fx70t;

  (* a device that cannot be columnar partitioned: a column mixes two
     tile types outside any forbidden area (step 4 fails) *)
  let bad =
    Grid.of_strings [ "cbc"; "ccc" ]
  in
  show "non-columnar device" bad;

  (* the same column rescued by declaring the odd tile forbidden:
     step 1 replaces it before the scan *)
  let rescued =
    Grid.of_strings ~forbidden:[ Rect.make ~x:2 ~y:1 ~w:1 ~h:1 ] [ "cbc"; "ccc" ]
  in
  show "rescued by a forbidden area" rescued
