(* Bring your own device: describe a custom columnar FPGA, compare
   relocation as a constraint against relocation as a metric
   (Sections IV and V), and export the MILP to a CPLEX-LP file that any
   external solver can consume.

     dune exec examples/custom_device.exe *)

open Device

let () =
  (* A 14x5 device: CLB fabric, two BRAM columns, one DSP column, and a
     hard block in the lower-left corner. *)
  let clb = Resource.tile_type Resource.Clb in
  let bram = Resource.tile_type Resource.Bram in
  let dsp = Resource.tile_type Resource.Dsp in
  let grid =
    Grid.of_columns ~name:"custom14"
      ~forbidden:[ Rect.make ~x:1 ~y:4 ~w:2 ~h:2 ]
      ~rows:5
      [ clb; clb; clb; bram; clb; clb; dsp; clb; clb; bram; clb; clb; clb; clb ]
  in
  let part = Partition.columnar_exn grid in
  print_endline (Grid.render grid);

  let regions =
    [
      { Spec.r_name = "dsp-kernel"; demand = [ (Resource.Clb, 3); (Resource.Dsp, 2) ] };
      { Spec.r_name = "buffer"; demand = [ (Resource.Clb, 2); (Resource.Bram, 2) ] };
      { Spec.r_name = "control"; demand = [ (Resource.Clb, 4) ] };
    ]
  in
  let nets = Spec.chain_nets ~weight:16. [ "dsp-kernel"; "buffer"; "control" ] in

  (* Relocation as a constraint: demand 2 reserved areas for the buffer. *)
  let hard =
    Spec.make ~name:"custom-hard" ~nets
      ~relocs:[ { Spec.target = "buffer"; copies = 2; mode = Spec.Hard } ]
      regions
  in
  let r = Search.Engine.solve part hard in
  (match r.Search.Engine.plan with
  | Some plan ->
    Format.printf "relocation as a constraint: wasted %d, %d reserved areas@."
      (Floorplan.wasted_frames part hard plan)
      (Floorplan.fc_count plan);
    print_endline (Floorplan.render part plan)
  | None -> print_endline "hard variant infeasible");

  (* Relocation as a metric: ask for 3 areas for everything, weightier
     for the DSP kernel; the solver reserves what fits. *)
  let soft =
    Spec.make ~name:"custom-soft" ~nets
      ~relocs:
        [
          { Spec.target = "dsp-kernel"; copies = 3; mode = Spec.Soft 5. };
          { Spec.target = "buffer"; copies = 3; mode = Spec.Soft 1. };
          { Spec.target = "control"; copies = 3; mode = Spec.Soft 1. };
        ]
      regions
  in
  let rs = Search.Engine.solve part soft in
  (match rs.Search.Engine.plan with
  | Some plan ->
    Format.printf "@.relocation as a metric: %d of %d requested areas reserved@."
      (Floorplan.fc_count plan)
      (Spec.total_fc_copies soft);
    print_endline (Floorplan.render part plan)
  | None -> print_endline "soft variant infeasible");

  (* Export the MILP for an external solver. *)
  let path = Filename.temp_file "custom" ".lp" in
  let text =
    Rfloor.Solver.export_lp
      ~options:Rfloor.Solver.default_options
      part hard
  in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  Format.printf "@.MILP exported to %s (%d lines, CPLEX LP format)@." path
    (List.length (String.split_on_char '\n' text))
