(* The static-analysis passes as a library: lint a deliberately broken
   design, read the human report, then lint a clean one and emit the
   machine-readable s-expression (the same output `rfloor_cli lint`
   prints).

     dune exec examples/lint_report.exe *)

open Device
module D = Rfloor_diag.Diagnostic

let () =
  let grid = Devices.virtex5_fx70t in
  let part = Partition.columnar_exn grid in

  (* A design with three seeded defects: one region demanding more CLBs
     than the device owns (RF004), a hard relocation request asking for
     more copies than any compatibility class can host (RF006), and a
     net referencing a region that does not exist (RF008).  Spec.make
     would reject the dangling net, so build the record directly, as a
     file parser or generator might. *)
  let broken =
    {
      Spec.s_name = "broken";
      regions =
        [
          { Spec.r_name = "Huge"; demand = [ (Resource.Clb, 100_000) ] };
          { Spec.r_name = "Mobile"; demand = [ (Resource.Clb, 40) ] };
        ];
      nets = [ { Spec.src = "Mobile"; dst = "Ghost"; weight = 64. } ];
      relocs = [ { Spec.target = "Mobile"; copies = 500; mode = Spec.Hard } ];
    }
  in
  let ds = Rfloor_analysis.Spec_lint.run part broken in
  Format.printf "--- broken design: human report ---@.%a@." D.pp_report ds;
  Format.printf "verdict: %s@.@." (D.summary ds);

  (* The SDR2 case study lints clean; its model passes the lint too. *)
  let spec = Sdr.sdr2 in
  let ds = Rfloor_analysis.Spec_lint.run part spec in
  let model_ds =
    Rfloor_analysis.Model_lint.run (Rfloor.Model.lp (Rfloor.Model.build part spec))
  in
  Format.printf "--- sdr2: machine-readable report ---@.%s@."
    (D.report_to_sexp (ds @ model_ds));
  Format.printf "sdr2 lints with %d errors@." (List.length (D.errors ds))
