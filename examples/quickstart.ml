(* Quickstart: describe a device, ask for a floorplan with a reserved
   relocation target, and print it.

     dune exec examples/quickstart.exe *)

open Device

let () =
  (* 1. A small columnar device: 10 columns x 4 rows, with CLB, BRAM and
     DSP columns (lowercase letters in the picture below). *)
  let grid = Devices.mini in
  let part = Partition.columnar_exn grid in
  Format.printf "Device %s:@.%s@.@." (Grid.name grid) (Grid.render grid);

  (* 2. A design: two regions connected by a bus.  "filter" wants one
     free-compatible area so its bitstream can be relocated at run time
     (relocation as a constraint, Section IV of the paper). *)
  let spec =
    Spec.make ~name:"quickstart"
      ~nets:(Spec.chain_nets ~weight:32. [ "filter"; "decoder" ])
      ~relocs:[ { Spec.target = "filter"; copies = 1; mode = Spec.Hard } ]
      [
        { Spec.r_name = "filter"; demand = [ (Resource.Clb, 2); (Resource.Bram, 1) ] };
        { Spec.r_name = "decoder"; demand = [ (Resource.Clb, 2); (Resource.Dsp, 1) ] };
      ]
  in

  (* 3. Solve.  The exact combinatorial engine minimizes wasted
     configuration frames, then wire length. *)
  let r = Search.Engine.solve part spec in
  match r.Search.Engine.plan with
  | None -> print_endline "no feasible floorplan"
  | Some plan ->
    Format.printf "wasted frames: %d, wire length: %.0f@."
      (Floorplan.wasted_frames part spec plan)
      (Floorplan.wirelength spec plan);
    print_endline (Floorplan.render part plan);
    (* 4. The same problem through the paper's MILP formulation. *)
    let milp =
      Rfloor.Solver.solve
        ~options:(Rfloor.Solver.Options.make ~time_limit:30. ())
        part spec
    in
    Format.printf "@.MILP engine: %a@." Rfloor.Solver.pp_outcome milp;
    (* 5. Or race both: the first strategy to prove optimality (or
       infeasibility) wins and cancels the other (DESIGN.md section 14). *)
    let race =
      Rfloor.Solver.solve
        ~options:
          (Rfloor.Solver.Options.make ~time_limit:30.
             ~strategy:
               (Rfloor.Solver.Strategy.portfolio
                  [
                    Rfloor.Solver.Strategy.milp ~workers:2 ();
                    Rfloor.Solver.Strategy.combinatorial ();
                  ])
             ())
        part spec
    in
    Format.printf "@.Portfolio: %a@." Rfloor.Solver.pp_outcome race
