(* Tests for the bitstream substrate: CRC vectors, wire-format round
   trips, and the central relocation property — relocating a bitstream
   to a compatible area is equivalent to synthesizing it there. *)

open Device

let mini_part = lazy (Partition.columnar_exn Devices.mini)

let test_crc32_vectors () =
  (* standard check value *)
  Alcotest.(check int32) "123456789" 0xCBF43926l
    (Bitstream.Crc32.digest_string "123456789");
  Alcotest.(check int32) "empty" 0l (Bitstream.Crc32.digest_string "");
  Alcotest.(check int32) "a" 0xE8B7BE43l (Bitstream.Crc32.digest_string "a")

let test_crc32_incremental () =
  let s = "relocation-aware floorplanning" in
  let b = Bytes.of_string s in
  let whole = Bitstream.Crc32.digest b in
  let part1 = Bitstream.Crc32.update 0l b 0 10 in
  let part2 = Bitstream.Crc32.update part1 b 10 (Bytes.length b - 10) in
  Alcotest.(check int32) "incremental = whole" whole part2

let test_frame_address_pack () =
  let a = { Bitstream.Frame.column = 513; region_row = 7; minor = 35 } in
  let packed = Bitstream.Frame.pack_address a in
  let a' = Bitstream.Frame.unpack_address packed in
  Alcotest.(check int) "column" a.Bitstream.Frame.column a'.Bitstream.Frame.column;
  Alcotest.(check int) "row" a.Bitstream.Frame.region_row a'.Bitstream.Frame.region_row;
  Alcotest.(check int) "minor" a.Bitstream.Frame.minor a'.Bitstream.Frame.minor

let test_frame_address_invalid () =
  Alcotest.check_raises "bad column" (Invalid_argument "Frame.pack_address: column")
    (fun () ->
      ignore
        (Bitstream.Frame.pack_address
           { Bitstream.Frame.column = 0; region_row = 1; minor = 0 }))

let test_synthesize_frame_count () =
  let part = Lazy.force mini_part in
  (* cols 1-3 of mini are C,C,B: (36+36+30) frames per row, 2 rows *)
  let img =
    Bitstream.Image.synthesize ~seed:1 part (Rect.make ~x:1 ~y:1 ~w:3 ~h:2)
  in
  Alcotest.(check int) "frames" (2 * (36 + 36 + 30))
    (Bitstream.Image.frame_count img)

let test_serialize_roundtrip () =
  let part = Lazy.force mini_part in
  let img =
    Bitstream.Image.synthesize ~seed:9 part (Rect.make ~x:4 ~y:2 ~w:3 ~h:2)
  in
  let bytes = Bitstream.Image.serialize img in
  match Bitstream.Image.parse bytes with
  | Ok img' -> Alcotest.(check bool) "equal" true (Bitstream.Image.equal img img')
  | Error e -> Alcotest.fail e

let test_corruption_detected () =
  let part = Lazy.force mini_part in
  let img =
    Bitstream.Image.synthesize ~seed:9 part (Rect.make ~x:4 ~y:2 ~w:2 ~h:1)
  in
  let bytes = Bitstream.Image.serialize img in
  Bytes.set bytes (Bytes.length bytes / 2)
    (Char.chr (Char.code (Bytes.get bytes (Bytes.length bytes / 2)) lxor 1));
  match Bitstream.Image.parse bytes with
  | Error "CRC mismatch" -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ e)
  | Ok _ -> Alcotest.fail "corruption not detected"

let test_parse_garbage () =
  (match Bitstream.Image.parse (Bytes.of_string "short") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short input accepted");
  match Bitstream.Image.parse (Bytes.make 32 'x') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* The relocation property (Definition .1 made executable): relocating
   the source bitstream into any compatible area produces exactly the
   bitstream one would synthesize there. *)
let test_relocation_equals_resynthesis () =
  let part = Lazy.force mini_part in
  let src = Rect.make ~x:1 ~y:1 ~w:2 ~h:2 in
  let img = Bitstream.Image.synthesize ~seed:3 part src in
  let sites = Compat.relocation_sites part src in
  Alcotest.(check bool) "several sites" true (List.length sites > 1);
  List.iter
    (fun dst ->
      match Bitstream.Relocate.relocate part ~src ~dst img with
      | Ok img' ->
        let direct = Bitstream.Image.synthesize ~seed:3 part dst in
        Alcotest.(check bool)
          (Printf.sprintf "relocated to %s equals direct synthesis"
             (Rect.to_string dst))
          true
          (Bitstream.Image.equal img' direct)
      | Error e -> Alcotest.fail (Format.asprintf "%a" Bitstream.Relocate.pp_error e))
    sites

let test_relocation_rejects_incompatible () =
  let part = Lazy.force mini_part in
  let src = Rect.make ~x:1 ~y:1 ~w:2 ~h:2 in
  (* cols 2-3 are C,B: incompatible with cols 1-2 = C,C *)
  let dst = Rect.make ~x:2 ~y:3 ~w:2 ~h:2 in
  let img = Bitstream.Image.synthesize ~seed:3 part src in
  match Bitstream.Relocate.relocate part ~src ~dst img with
  | Error (Bitstream.Relocate.Incompatible _) -> ()
  | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Bitstream.Relocate.pp_error e)
  | Ok _ -> Alcotest.fail "incompatible relocation accepted"

let test_relocation_rejects_wrong_device () =
  let mini = Lazy.force mini_part in
  let fig1 = Partition.columnar_exn Devices.fig1 in
  let src = Rect.make ~x:1 ~y:1 ~w:1 ~h:1 in
  let img = Bitstream.Image.synthesize ~seed:3 fig1 src in
  match Bitstream.Relocate.relocate mini ~src ~dst:src img with
  | Error (Bitstream.Relocate.Wrong_device _) -> ()
  | _ -> Alcotest.fail "wrong-device image accepted"

let test_relocate_serialized_end_to_end () =
  let part = Lazy.force mini_part in
  let src = Rect.make ~x:4 ~y:1 ~w:2 ~h:2 in
  let dst = Rect.make ~x:4 ~y:3 ~w:2 ~h:2 in
  let wire = Bitstream.Image.serialize (Bitstream.Image.synthesize ~seed:5 part src) in
  match Bitstream.Relocate.relocate_serialized part ~src ~dst wire with
  | Ok wire' -> (
    match Bitstream.Image.parse wire' with
    | Ok img ->
      Alcotest.(check bool) "payload preserved" true
        (Bitstream.Image.payload_equal img
           (Bitstream.Image.synthesize ~seed:5 part src));
      (* CRC of the relocated stream is fresh and correct: parse above
         validated it; also the addresses moved *)
      List.iter
        (fun (f : Bitstream.Frame.t) ->
          Alcotest.(check bool) "address in target" true
            (Rect.contains_point dst f.Bitstream.Frame.addr.Bitstream.Frame.column
               f.Bitstream.Frame.addr.Bitstream.Frame.region_row))
        img.Bitstream.Image.frames
    | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

let prop_relocation_roundtrip =
  QCheck2.Test.make ~name:"relocation round-trips (src -> dst -> src)" ~count:60
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let g = Devices.random ~max_width:8 ~max_height:4 rng in
         let part = Partition.columnar_exn g in
         let w = 1 + Random.State.int rng 2 and h = 1 + Random.State.int rng 2 in
         let x = 1 + Random.State.int rng (Partition.width part - w + 1) in
         let y = 1 + Random.State.int rng (Partition.height part - h + 1) in
         let src = Rect.make ~x ~y ~w ~h in
         let sites = Compat.relocation_sites ~avoid_forbidden:false part src in
         let dst = List.nth sites (Random.State.int rng (List.length sites)) in
         (part, src, dst, Random.State.int rng 1000))
       ~shrink:(fun _ -> Seq.empty))
    (fun (part, src, dst, seed) ->
      let img = Bitstream.Image.synthesize ~seed part src in
      match Bitstream.Relocate.relocate part ~src ~dst img with
      | Error _ -> false
      | Ok img' -> (
        match Bitstream.Relocate.relocate part ~src:dst ~dst:src img' with
        | Error _ -> false
        | Ok img'' -> Bitstream.Image.equal img img''))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "bitstream.crc",
      [
        Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
        Alcotest.test_case "incremental" `Quick test_crc32_incremental;
      ] );
    ( "bitstream.frame",
      [
        Alcotest.test_case "address pack/unpack" `Quick test_frame_address_pack;
        Alcotest.test_case "address validation" `Quick test_frame_address_invalid;
      ] );
    ( "bitstream.image",
      [
        Alcotest.test_case "frame count" `Quick test_synthesize_frame_count;
        Alcotest.test_case "serialize round trip" `Quick test_serialize_roundtrip;
        Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
        Alcotest.test_case "garbage rejected" `Quick test_parse_garbage;
      ] );
    ( "bitstream.relocate",
      [
        Alcotest.test_case "equals resynthesis" `Quick test_relocation_equals_resynthesis;
        Alcotest.test_case "rejects incompatible" `Quick
          test_relocation_rejects_incompatible;
        Alcotest.test_case "rejects wrong device" `Quick
          test_relocation_rejects_wrong_device;
        Alcotest.test_case "serialized end to end" `Quick
          test_relocate_serialized_end_to_end;
      ]
      @ qsuite [ prop_relocation_roundtrip ] );
  ]
