(* Tests for the baseline floorplanners: sequence-pair invariants, the
   SA baseline and the tessellation heuristic. *)

open Device

let fx_part = lazy (Partition.columnar_exn Devices.virtex5_fx70t)
let mini_part = lazy (Partition.columnar_exn Devices.mini)

let test_sequence_pair_basics () =
  let sp = Baselines.Sequence_pair.of_arrays [| 0; 1; 2 |] [| 2; 0; 1 |] in
  Alcotest.(check int) "size" 3 (Baselines.Sequence_pair.size sp);
  (* 0 before 1 in both -> left *)
  Alcotest.(check bool) "left" true
    (Baselines.Sequence_pair.relation sp 0 1 = Baselines.Sequence_pair.Left);
  (* 0 before 2 in s1, after in s2 -> over *)
  Alcotest.(check bool) "over" true
    (Baselines.Sequence_pair.relation sp 0 2 = Baselines.Sequence_pair.Over)

let test_sequence_pair_invalid () =
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Sequence_pair.of_arrays: not permutations") (fun () ->
      ignore (Baselines.Sequence_pair.of_arrays [| 0; 0 |] [| 0; 1 |]))

let rects_of_packing shapes pos =
  Array.init (Array.length shapes) (fun i ->
      let x, y = pos.(i) in
      let w, h = shapes.(i) in
      Rect.make ~x:(x + 1) ~y:(y + 1) ~w ~h)

let prop_pack_overlap_free =
  QCheck2.Test.make ~name:"sequence-pair packing is overlap-free" ~count:300
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let n = 2 + Random.State.int rng 5 in
         let perm () =
           let a = Array.init n Fun.id in
           for i = n - 1 downto 1 do
             let j = Random.State.int rng (i + 1) in
             let t = a.(i) in
             a.(i) <- a.(j);
             a.(j) <- t
           done;
           a
         in
         let shapes =
           Array.init n (fun _ ->
               (1 + Random.State.int rng 4, 1 + Random.State.int rng 4))
         in
         (Baselines.Sequence_pair.of_arrays (perm ()) (perm ()), shapes))
       ~shrink:(fun _ -> Seq.empty))
    (fun (sp, shapes) ->
      let pos = Baselines.Sequence_pair.pack sp shapes in
      let rects = rects_of_packing shapes pos in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri (fun j b -> if i < j && Rect.overlaps a b then ok := false) rects)
        rects;
      !ok)

let prop_extract_of_valid_placement =
  QCheck2.Test.make ~name:"extract of a packing re-packs without overlap"
    ~count:200
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let n = 2 + Random.State.int rng 4 in
         let shapes =
           Array.init n (fun _ ->
               (1 + Random.State.int rng 3, 1 + Random.State.int rng 3))
         in
         (* random disjoint placement on a diagonal strip *)
         let rects =
           Array.init n (fun i ->
               let w, h = shapes.(i) in
               Rect.make ~x:(1 + (i * 5)) ~y:(1 + (i mod 2)) ~w ~h)
         in
         (shapes, rects))
       ~shrink:(fun _ -> Seq.empty))
    (fun (shapes, rects) ->
      let sp = Baselines.Sequence_pair.extract rects in
      let pos = Baselines.Sequence_pair.pack sp shapes in
      let rects' = rects_of_packing shapes pos in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri (fun j b -> if i < j && Rect.overlaps a b then ok := false)
            rects')
        rects';
      !ok)

let test_extract_rejects_overlap () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Sequence_pair.extract: overlapping rectangles") (fun () ->
      ignore
        (Baselines.Sequence_pair.extract
           [| Rect.make ~x:1 ~y:1 ~w:2 ~h:2; Rect.make ~x:2 ~y:2 ~w:2 ~h:2 |]))

let sa_spec =
  Spec.make ~name:"sa"
    ~nets:(Spec.chain_nets [ "A"; "B" ])
    [
      { Spec.r_name = "A"; demand = [ (Resource.Clb, 2) ] };
      { Spec.r_name = "B"; demand = [ (Resource.Dsp, 1) ] };
    ]

let test_annealing_valid_plan () =
  let part = Lazy.force mini_part in
  let r =
    Baselines.Annealing.solve
      ~options:{ Baselines.Annealing.default_options with iterations = 4000 }
      part sa_spec
  in
  match r.Baselines.Annealing.plan with
  | Some plan ->
    Alcotest.(check bool) "valid" true (Floorplan.is_valid part sa_spec plan)
  | None -> Alcotest.fail "SA found no valid plan"

let test_annealing_unplaceable () =
  let part = Lazy.force mini_part in
  let spec =
    Spec.make ~name:"huge" [ { Spec.r_name = "A"; demand = [ (Resource.Dsp, 99) ] } ]
  in
  let r = Baselines.Annealing.solve part spec in
  Alcotest.(check bool) "no plan" true (r.Baselines.Annealing.plan = None)

let test_annealing_deterministic_seed () =
  let part = Lazy.force mini_part in
  let opts = { Baselines.Annealing.default_options with iterations = 2000 } in
  let a = Baselines.Annealing.solve ~options:opts part sa_spec in
  let b = Baselines.Annealing.solve ~options:opts part sa_spec in
  Alcotest.(check bool) "same result for same seed" true
    (a.Baselines.Annealing.wasted = b.Baselines.Annealing.wasted
    && a.Baselines.Annealing.wirelength = b.Baselines.Annealing.wirelength)

let test_vipin_fahmy_sdr () =
  let part = Lazy.force fx_part in
  let r = Baselines.Vipin_fahmy.solve part Sdr.design in
  match (r.Baselines.Vipin_fahmy.plan, r.Baselines.Vipin_fahmy.wasted) with
  | Some plan, Some wasted ->
    Alcotest.(check bool) "valid" true (Floorplan.is_valid part Sdr.design plan);
    (* Table II shape: the tessellation heuristic wastes strictly more
       frames than the exact/MILP floorplanners (paper: 466 vs 306) *)
    Alcotest.(check bool) "worse than optimal 90" true (wasted > 90)
  | _ -> Alcotest.fail "heuristic failed on the SDR design"

let test_vipin_fahmy_kernel_alignment () =
  let part = Lazy.force fx_part in
  let r = Baselines.Vipin_fahmy.solve part Sdr.design in
  let plan = Option.get r.Baselines.Vipin_fahmy.plan in
  let starts =
    Array.to_list
      (Array.map (fun p -> p.Partition.x1) part.Partition.portions)
  in
  List.iter
    (fun { Floorplan.p_region; p_rect } ->
      Alcotest.(check bool)
        (p_region ^ " starts on a kernel boundary")
        true
        (List.mem p_rect.Rect.x starts))
    plan.Floorplan.placements

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "baselines.sequence_pair",
      [
        Alcotest.test_case "relations" `Quick test_sequence_pair_basics;
        Alcotest.test_case "invalid input" `Quick test_sequence_pair_invalid;
        Alcotest.test_case "extract rejects overlap" `Quick test_extract_rejects_overlap;
      ]
      @ qsuite [ prop_pack_overlap_free; prop_extract_of_valid_placement ] );
    ( "baselines.annealing",
      [
        Alcotest.test_case "valid plan" `Quick test_annealing_valid_plan;
        Alcotest.test_case "unplaceable" `Quick test_annealing_unplaceable;
        Alcotest.test_case "deterministic" `Quick test_annealing_deterministic_seed;
      ] );
    ( "baselines.vipin_fahmy",
      [
        Alcotest.test_case "SDR heuristic row" `Quick test_vipin_fahmy_sdr;
        Alcotest.test_case "kernel alignment" `Quick test_vipin_fahmy_kernel_alignment;
      ] );
  ]
