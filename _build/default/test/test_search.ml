(* Tests for the combinatorial engine: candidate enumeration invariants,
   optimality against brute force on tiny instances, and the Section VI
   results on the FX70T model. *)

open Device

let mini_part = lazy (Partition.columnar_exn Devices.mini)
let fx_part = lazy (Partition.columnar_exn Devices.virtex5_fx70t)

let test_candidates_satisfy_demand () =
  let part = Lazy.force mini_part in
  let demand = [ (Resource.Clb, 3); (Resource.Bram, 1) ] in
  let cands = Search.Candidates.enumerate part demand in
  Alcotest.(check bool) "non-empty" true (cands <> []);
  List.iter
    (fun (c : Search.Candidates.candidate) ->
      Alcotest.(check bool) "satisfies" true
        (Compat.satisfies part c.Search.Candidates.rect demand);
      Alcotest.(check int) "waste agrees"
        (Compat.wasted_frames part c.Search.Candidates.rect demand)
        c.Search.Candidates.waste;
      Alcotest.(check bool) "no forbidden" true
        (not (Grid.rect_hits_forbidden part.Partition.grid c.Search.Candidates.rect)))
    cands;
  (* sorted by waste *)
  let rec sorted = function
    | (a : Search.Candidates.candidate) :: (b :: _ as rest) ->
      a.Search.Candidates.waste <= b.Search.Candidates.waste && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "waste ascending" true (sorted cands)

let test_candidates_unplaceable () =
  let part = Lazy.force mini_part in
  (* mini has 4 DSP tiles in one column; 5 are impossible *)
  Alcotest.(check (option int)) "unplaceable" None
    (Search.Candidates.min_waste part [ (Resource.Dsp, 5) ]);
  Alcotest.(check (option int)) "placeable zero waste" (Some 0)
    (Search.Candidates.min_waste part [ (Resource.Clb, 2) ])

let prop_candidates_complete =
  QCheck2.Test.make ~name:"candidate enumeration is complete" ~count:60
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let g = Devices.random ~max_width:7 ~max_height:4 rng in
         let demand =
           [ (Resource.Clb, 1 + Random.State.int rng 3) ]
           @ (if Random.State.bool rng then [ (Resource.Bram, 1) ] else [])
         in
         (Partition.columnar_exn g, demand))
       ~shrink:(fun _ -> Seq.empty))
    (fun (part, demand) ->
      let cands = Search.Candidates.enumerate part demand in
      let member r =
        List.exists
          (fun (c : Search.Candidates.candidate) ->
            Rect.equal c.Search.Candidates.rect r)
          cands
      in
      let ok = ref true in
      let w = Partition.width part and h = Partition.height part in
      for x = 1 to w do
        for y = 1 to h do
          for rw = 1 to w - x + 1 do
            for rh = 1 to h - y + 1 do
              let r = Rect.make ~x ~y ~w:rw ~h:rh in
              let expected =
                Compat.satisfies part r demand
                && not (Grid.rect_hits_forbidden part.Partition.grid r)
              in
              if expected <> member r then ok := false
            done
          done
        done
      done;
      !ok)

(* brute-force optimal waste for tiny specs: enumerate all placements *)
let brute_force_best part (spec : Spec.t) =
  let cands =
    List.map
      (fun (r : Spec.region) ->
        (r, Search.Candidates.enumerate part r.Spec.demand))
      spec.Spec.regions
  in
  let best = ref None in
  let rec go acc waste = function
    | [] ->
      (match !best with
      | Some b when b <= waste -> ()
      | _ -> best := Some waste)
    | ((_ : Spec.region), cs) :: rest ->
      List.iter
        (fun (c : Search.Candidates.candidate) ->
          let rect = c.Search.Candidates.rect in
          if not (List.exists (Rect.overlaps rect) acc) then
            go (rect :: acc) (waste + c.Search.Candidates.waste) rest)
        cs
  in
  go [] 0 cands;
  !best

let prop_engine_matches_bruteforce =
  QCheck2.Test.make ~name:"engine optimum matches brute force" ~count:40
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let g = Devices.random ~max_width:6 ~max_height:3 rng in
         let nregions = 1 + Random.State.int rng 2 in
         let region i =
           {
             Spec.r_name = Printf.sprintf "R%d" i;
             demand = [ (Resource.Clb, 1 + Random.State.int rng 2) ];
           }
         in
         let spec =
           Spec.make ~name:"rand" (List.init nregions region)
         in
         (Partition.columnar_exn g, spec))
       ~shrink:(fun _ -> Seq.empty))
    (fun (part, spec) ->
      let opts =
        { Search.Engine.default_options with optimize_wirelength = false }
      in
      let r = Search.Engine.solve ~options:opts part spec in
      match (r.Search.Engine.wasted, brute_force_best part spec) with
      | Some a, Some b -> a = b && r.Search.Engine.optimal
      | None, None -> r.Search.Engine.optimal
      | _ -> false)

let prop_engine_plans_valid =
  QCheck2.Test.make ~name:"engine plans validate" ~count:40
    (QCheck2.Gen.make_primitive
       ~gen:(fun rng ->
         let g = Devices.random ~max_width:8 ~max_height:4 rng in
         let spec =
           Spec.make ~name:"rand"
             ~relocs:
               (if Random.State.bool rng then
                  [ { Spec.target = "R0"; copies = 1; mode = Spec.Hard } ]
                else [])
             [
               { Spec.r_name = "R0"; demand = [ (Resource.Clb, 2) ] };
               { Spec.r_name = "R1"; demand = [ (Resource.Clb, 1) ] };
             ]
         in
         (Partition.columnar_exn g, spec))
       ~shrink:(fun _ -> Seq.empty))
    (fun (part, spec) ->
      let r = Search.Engine.solve part spec in
      match r.Search.Engine.plan with
      | None -> true
      | Some plan -> Floorplan.is_valid part spec plan)

(* ------------------------------------------------------------------ *)
(* Section VI results on the FX70T model *)

let test_sdr_optimum () =
  let part = Lazy.force fx_part in
  let opts =
    { Search.Engine.default_options with optimize_wirelength = false }
  in
  let r = Search.Engine.solve ~options:opts part Sdr.design in
  Alcotest.(check bool) "optimal" true r.Search.Engine.optimal;
  Alcotest.(check (option int)) "wasted" (Some 90) r.Search.Engine.wasted

let test_sdr2_same_cost () =
  let part = Lazy.force fx_part in
  let opts =
    { Search.Engine.default_options with optimize_wirelength = false }
  in
  let r = Search.Engine.solve ~options:opts part Sdr.sdr2 in
  Alcotest.(check (option int)) "wasted" (Some 90) r.Search.Engine.wasted;
  match r.Search.Engine.plan with
  | Some plan ->
    Alcotest.(check int) "6 areas" 6 (Floorplan.fc_count plan);
    Alcotest.(check bool) "valid" true (Floorplan.is_valid part Sdr.sdr2 plan)
  | None -> Alcotest.fail "no plan"

let test_sdr3_feasible_nine_areas () =
  let part = Lazy.force fx_part in
  let r = Search.Engine.feasible part Sdr.sdr3 in
  match r.Search.Engine.plan with
  | Some plan ->
    Alcotest.(check int) "9 areas" 9 (Floorplan.fc_count plan);
    Alcotest.(check bool) "valid" true (Floorplan.is_valid part Sdr.sdr3 plan)
  | None -> Alcotest.fail "SDR3 should be feasible"

let test_feasibility_analysis () =
  let part = Lazy.force fx_part in
  let expect = function
    | name when List.mem name Sdr.relocatable -> true
    | _ -> false
  in
  List.iter
    (fun name ->
      let spec = Sdr.feasibility_variant name in
      let r =
        Search.Engine.feasible
          ~options:
            { Search.Engine.default_options with time_limit = Some 60. }
          part spec
      in
      match (r.Search.Engine.plan, r.Search.Engine.optimal) with
      | Some plan, _ ->
        Alcotest.(check bool) (name ^ " expected feasible") true (expect name);
        Alcotest.(check bool) (name ^ " plan valid") true
          (Floorplan.is_valid part spec plan)
      | None, proven ->
        Alcotest.(check bool) (name ^ " expected infeasible") false (expect name);
        Alcotest.(check bool) (name ^ " infeasibility proven") true proven)
    Sdr.module_names

let test_soft_areas_best_effort () =
  let part = Lazy.force mini_part in
  let spec =
    Spec.make ~name:"soft"
      ~relocs:[ { Spec.target = "A"; copies = 2; mode = Spec.Soft 1. } ]
      [ { Spec.r_name = "A"; demand = [ (Resource.Clb, 2) ] } ]
  in
  let r = Search.Engine.solve part spec in
  match r.Search.Engine.plan with
  | Some plan ->
    Alcotest.(check bool) "some areas found" true (Floorplan.fc_count plan >= 1);
    Alcotest.(check bool) "valid" true (Floorplan.is_valid part spec plan)
  | None -> Alcotest.fail "no plan"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "search.candidates",
      [
        Alcotest.test_case "satisfy demand" `Quick test_candidates_satisfy_demand;
        Alcotest.test_case "unplaceable" `Quick test_candidates_unplaceable;
      ]
      @ qsuite [ prop_candidates_complete ] );
    ( "search.engine",
      qsuite [ prop_engine_matches_bruteforce; prop_engine_plans_valid ]
      @ [
          Alcotest.test_case "soft areas best effort" `Quick
            test_soft_areas_best_effort;
        ] );
    ( "search.sdr",
      [
        Alcotest.test_case "SDR optimum 90" `Quick test_sdr_optimum;
        Alcotest.test_case "SDR2 same cost, 6 areas" `Quick test_sdr2_same_cost;
        Alcotest.test_case "SDR3 feasible, 9 areas" `Quick
          test_sdr3_feasible_nine_areas;
        Alcotest.test_case "feasibility analysis" `Slow test_feasibility_analysis;
      ] );
  ]
