(* Tests for the run-time reconfiguration simulator. *)

open Device
module R = Runtime.Reconfig

let mini_part = lazy (Partition.columnar_exn Devices.mini)

let spec =
  Spec.make ~name:"rt"
    ~relocs:[ { Spec.target = "A"; copies = 1; mode = Spec.Hard } ]
    [
      { Spec.r_name = "A"; demand = [ (Resource.Clb, 2) ] };
      { Spec.r_name = "B"; demand = [ (Resource.Dsp, 1) ] };
    ]

let plan part =
  match (Search.Engine.solve part spec).Search.Engine.plan with
  | Some p -> p
  | None -> Alcotest.fail "no plan"

let req at region mode = { R.at; r_region = region; r_mode = mode }

let test_write_time () =
  (* 2 CLB tiles = 72 frames x 41 words / 100 words/us *)
  let part = Lazy.force mini_part in
  let rect = Rect.make ~x:1 ~y:1 ~w:2 ~h:1 in
  Alcotest.(check int) "frames" 72 (R.frames_of_area part rect);
  Alcotest.(check (float 1e-9)) "write time" (72. *. 41. /. 100.)
    (R.write_time R.default_config ~frames:72)

let test_in_place_downtime () =
  let part = Lazy.force mini_part in
  let plan = plan part in
  match R.simulate part spec plan R.Reload_in_place [ req 0. "A" "m1" ] with
  | Ok ([ e ], stats) ->
    Alcotest.(check bool) "not relocated" false e.R.e_relocated;
    let frames = R.frames_of_area part e.R.e_area in
    let expect = R.write_time R.default_config ~frames in
    Alcotest.(check (float 1e-6)) "downtime = full write" expect e.R.e_downtime;
    Alcotest.(check (float 1e-6)) "stats agree" expect stats.R.total_downtime
  | Ok _ -> Alcotest.fail "expected one event"
  | Error e -> Alcotest.fail e

let test_prefetch_hides_latency () =
  let part = Lazy.force mini_part in
  let plan = plan part in
  match R.simulate part spec plan R.Relocate_prefetch [ req 0. "A" "m1" ] with
  | Ok ([ e ], stats) ->
    Alcotest.(check bool) "relocated" true e.R.e_relocated;
    Alcotest.(check (float 1e-9)) "downtime = handover only"
      R.default_config.R.swap_overhead_us e.R.e_downtime;
    Alcotest.(check int) "one relocation" 1 stats.R.relocations
  | Ok _ -> Alcotest.fail "expected one event"
  | Error e -> Alcotest.fail e

let test_area_swap_reusable () =
  (* after a swap the old area joins the pool, so back-to-back switches
     on the same region keep relocating *)
  let part = Lazy.force mini_part in
  let plan = plan part in
  let reqs = [ req 0. "A" "m1"; req 1000. "A" "m2"; req 2000. "A" "m3" ] in
  match R.simulate part spec plan R.Relocate_prefetch reqs with
  | Ok (events, stats) ->
    Alcotest.(check int) "three relocations" 3 stats.R.relocations;
    List.iter
      (fun (e : R.event) ->
        Alcotest.(check bool) "every switch relocated" true e.R.e_relocated)
      events
  | Error e -> Alcotest.fail e

let test_fallback_without_areas () =
  (* region B has no reserved area: prefetch falls back to in-place *)
  let part = Lazy.force mini_part in
  let plan = plan part in
  match R.simulate part spec plan R.Relocate_prefetch [ req 0. "B" "m1" ] with
  | Ok ([ e ], _) -> Alcotest.(check bool) "fallback" false e.R.e_relocated
  | Ok _ -> Alcotest.fail "expected one event"
  | Error e -> Alcotest.fail e

let test_port_serializes () =
  let part = Lazy.force mini_part in
  let plan = plan part in
  match
    R.simulate part spec plan R.Reload_in_place [ req 0. "A" "m"; req 0. "B" "m" ]
  with
  | Ok ([ e1; e2 ], _) ->
    Alcotest.(check bool) "second waits for the port" true
      (e2.R.e_port_start >= e1.R.e_port_start +. 1e-9
      || e2.R.e_port_start >= e1.R.e_active -. 1e-9)
  | Ok _ -> Alcotest.fail "expected two events"
  | Error e -> Alcotest.fail e

let test_unknown_region () =
  let part = Lazy.force mini_part in
  let plan = plan part in
  match R.simulate part spec plan R.Reload_in_place [ req 0. "Z" "m" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown region accepted"

let test_stored_bitstreams () =
  let part = Lazy.force mini_part in
  let plan = plan part in
  (* A has 1 reserved area -> 2 locations; 3 modes *)
  let modes = [ ("A", 3) ] in
  Alcotest.(check int) "without filter" 6
    (R.stored_bitstreams part plan ~modes_per_region:modes ~relocatable:false);
  Alcotest.(check int) "with filter" 3
    (R.stored_bitstreams part plan ~modes_per_region:modes ~relocatable:true)

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "write time" `Quick test_write_time;
        Alcotest.test_case "in-place downtime" `Quick test_in_place_downtime;
        Alcotest.test_case "prefetch hides latency" `Quick test_prefetch_hides_latency;
        Alcotest.test_case "swapped areas reusable" `Quick test_area_swap_reusable;
        Alcotest.test_case "fallback without areas" `Quick test_fallback_without_areas;
        Alcotest.test_case "port serializes" `Quick test_port_serializes;
        Alcotest.test_case "unknown region" `Quick test_unknown_region;
        Alcotest.test_case "stored bitstreams" `Quick test_stored_bitstreams;
      ] );
  ]
