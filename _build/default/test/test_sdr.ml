(* Tests for the SDR case study: Table I values and the design specs. *)

open Device

let frames = Grid.frames Devices.virtex5_fx70t

let test_table1_rows () =
  let rows = Sdr.table1 ~frames in
  let expect =
    [
      ("Matched Filter", 25, 0, 5, 1040);
      ("Carrier Recovery", 7, 0, 1, 280);
      ("Demodulator", 5, 2, 0, 240);
      ("Signal Decoder", 12, 1, 0, 462);
      ("Video Decoder", 55, 2, 5, 2180);
    ]
  in
  List.iter2
    (fun (n, c, b, d, f) (n', c', b', d', f') ->
      Alcotest.(check string) "name" n n';
      Alcotest.(check int) (n ^ " clb") c c';
      Alcotest.(check int) (n ^ " bram") b b';
      Alcotest.(check int) (n ^ " dsp") d d';
      Alcotest.(check int) (n ^ " frames") f f')
    expect rows

let test_table1_totals () =
  let rows = Sdr.table1 ~frames in
  let tc, tb, td, tf =
    List.fold_left
      (fun (c, b, d, f) (_, c', b', d', f') -> (c + c', b + b', d + d', f + f'))
      (0, 0, 0, 0) rows
  in
  Alcotest.(check int) "total clb" 104 tc;
  Alcotest.(check int) "total bram" 5 tb;
  Alcotest.(check int) "total dsp" 11 td;
  Alcotest.(check int) "total frames" 4202 tf

let test_design_structure () =
  Alcotest.(check int) "5 regions" 5 (List.length Sdr.design.Spec.regions);
  Alcotest.(check int) "4 bus nets" 4 (List.length Sdr.design.Spec.nets);
  List.iter
    (fun (n : Spec.net) ->
      Alcotest.(check (float 1e-9)) "64-bit bus" 64. n.Spec.weight)
    Sdr.design.Spec.nets;
  Alcotest.(check int) "no relocs in base design" 0
    (List.length Sdr.design.Spec.relocs)

let test_sdr_variants () =
  Alcotest.(check int) "sdr2 copies" 6 (Spec.total_fc_copies Sdr.sdr2);
  Alcotest.(check int) "sdr3 copies" 9 (Spec.total_fc_copies Sdr.sdr3);
  List.iter
    (fun (rr : Spec.reloc_req) ->
      Alcotest.(check bool) "relocatable target" true
        (List.mem rr.Spec.target Sdr.relocatable);
      Alcotest.(check bool) "hard" true (rr.Spec.mode = Spec.Hard))
    Sdr.sdr2.Spec.relocs

let test_feasibility_variant () =
  let s = Sdr.feasibility_variant Sdr.matched_filter in
  Alcotest.(check int) "one request" 1 (List.length s.Spec.relocs);
  Alcotest.(check int) "one copy" 1 (Spec.total_fc_copies s)

let test_device_can_host_design () =
  (* sanity: the FX70T census covers the total SDR demand *)
  let total = Grid.total_tiles Devices.virtex5_fx70t in
  List.iter
    (fun (k, n) ->
      Alcotest.(check bool)
        (Resource.kind_to_string k ^ " capacity")
        true
        (Resource.demand_get total k >= n))
    (Spec.total_demand Sdr.design)

let suites =
  [
    ( "sdr",
      [
        Alcotest.test_case "table 1 rows" `Quick test_table1_rows;
        Alcotest.test_case "table 1 totals" `Quick test_table1_totals;
        Alcotest.test_case "design structure" `Quick test_design_structure;
        Alcotest.test_case "sdr2/sdr3 variants" `Quick test_sdr_variants;
        Alcotest.test_case "feasibility variant" `Quick test_feasibility_variant;
        Alcotest.test_case "device capacity" `Quick test_device_can_host_design;
      ] );
  ]
