test/test_milp.ml: Alcotest Array Branch_bound Float Gomory List Lp Lp_format Milp Mps Presolve Printf QCheck2 QCheck_alcotest Random Seq Simplex String
