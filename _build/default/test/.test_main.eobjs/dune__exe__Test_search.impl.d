test/test_search.ml: Alcotest Compat Device Devices Floorplan Grid Lazy List Partition Printf QCheck2 QCheck_alcotest Random Rect Resource Sdr Search Seq Spec
