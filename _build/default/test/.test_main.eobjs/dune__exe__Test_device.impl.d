test/test_device.ml: Alcotest Array Compat Device Devices Floorplan Grid Lazy List Partition QCheck2 QCheck_alcotest Random Rect Resource Seq Spec String
