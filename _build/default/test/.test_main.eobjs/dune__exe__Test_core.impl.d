test/test_core.ml: Alcotest Array Device Devices Floorplan Lazy List Milp Option Partition QCheck2 QCheck_alcotest Random Resource Rfloor Search Seq Spec String
