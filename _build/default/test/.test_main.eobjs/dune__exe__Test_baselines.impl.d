test/test_baselines.ml: Alcotest Array Baselines Device Devices Floorplan Fun Lazy List Option Partition QCheck2 QCheck_alcotest Random Rect Resource Sdr Seq Spec
