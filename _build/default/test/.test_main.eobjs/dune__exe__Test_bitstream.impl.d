test/test_bitstream.ml: Alcotest Bitstream Bytes Char Compat Device Devices Format Lazy List Partition Printf QCheck2 QCheck_alcotest Random Rect Seq
