test/test_main.ml: Alcotest Test_baselines Test_bitstream Test_core Test_device Test_io Test_milp Test_runtime Test_sdr Test_search
