test/test_sdr.ml: Alcotest Device Devices Grid List Resource Sdr Spec
