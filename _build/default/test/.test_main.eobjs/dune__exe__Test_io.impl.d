test/test_io.ml: Alcotest Device Floorplan Grid Io List Partition Resource Search Spec
