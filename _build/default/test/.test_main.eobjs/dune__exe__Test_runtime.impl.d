test/test_runtime.ml: Alcotest Device Devices Lazy List Partition Rect Resource Runtime Search Spec
