open Device

type options = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
  wirelength_weight : float;
}

let default_options =
  {
    iterations = 20_000;
    initial_temperature = 500.;
    cooling = 0.9995;
    seed = 42;
    wirelength_weight = 0.05;
  }

type outcome = {
  plan : Floorplan.t option;
  wasted : int option;
  wirelength : float option;
  energy_trace : float list;
  iterations : int;
}

(* Candidate shapes per region: distinct (w, h) pairs that cover the
   demand somewhere on the device, cheapest-waste first, capped. *)
let shape_menu part demand =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (c : Search.Candidates.candidate) ->
      let key = (c.Search.Candidates.rect.Rect.w, c.Search.Candidates.rect.Rect.h) in
      if not (Hashtbl.mem tbl key) then Hashtbl.replace tbl key c.Search.Candidates.waste)
    (Search.Candidates.enumerate part demand);
  let shapes = Hashtbl.fold (fun k w acc -> (k, w) :: acc) tbl [] in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) shapes in
  Array.of_list (List.map fst (List.filteri (fun i _ -> i < 24) sorted))

type state = {
  sp : Sequence_pair.t;
  shape_idx : int array; (* per region, index into its menu *)
}

let solve ?(options = default_options) part (spec : Spec.t) =
  let rng = Random.State.make [| options.seed |] in
  let regions = Array.of_list spec.Spec.regions in
  let n = Array.length regions in
  let menus =
    Array.map (fun (r : Spec.region) -> shape_menu part r.Spec.demand) regions
  in
  if Array.exists (fun m -> Array.length m = 0) menus then
    { plan = None; wasted = None; wirelength = None; energy_trace = []; iterations = 0 }
  else begin
    let width = Partition.width part and height = Partition.height part in
    let evaluate st =
      let shapes =
        Array.init n (fun i -> menus.(i).(st.shape_idx.(i)))
      in
      let pos = Sequence_pair.pack st.sp shapes in
      let rects =
        Array.init n (fun i ->
            let px, py = pos.(i) in
            let w, h = shapes.(i) in
            (* clamp into the device so the evaluation is always defined;
               overflow is penalized below from the raw packing *)
            let x = min (max 1 (px + 1)) (max 1 (width - w + 1)) in
            let y = min (max 1 (py + 1)) (max 1 (height - h + 1)) in
            Rect.make ~x ~y ~w:(min w width) ~h:(min h height))
      in
      let overflow = ref 0 in
      Array.iteri
        (fun i (px, py) ->
          let w, h = shapes.(i) in
          if px + w > width then overflow := !overflow + (px + w - width);
          if py + h > height then overflow := !overflow + (py + h - height))
        pos;
      let shortfall = ref 0 and forbidden = ref 0 and waste = ref 0 in
      Array.iteri
        (fun i rect ->
          let demand = regions.(i).Spec.demand in
          if Grid.rect_hits_forbidden part.Partition.grid rect then incr forbidden;
          let covered = Compat.covered_demand part rect in
          List.iter
            (fun (k, need) ->
              let got = Resource.demand_get covered k in
              if got < need then shortfall := !shortfall + (need - got))
            demand;
          waste := !waste + Compat.wasted_frames part rect demand)
        rects;
      let plan =
        Floorplan.make
          (Array.to_list
             (Array.mapi
                (fun i rect ->
                  { Floorplan.p_region = regions.(i).Spec.r_name; p_rect = rect })
                rects))
          []
      in
      let wl = Floorplan.wirelength spec plan in
      let violations = (1000 * !overflow) + (500 * !shortfall) + (5000 * !forbidden) in
      let energy =
        float_of_int violations +. float_of_int !waste
        +. (options.wirelength_weight *. wl)
      in
      (energy, violations = 0, plan, !waste, wl)
    in
    let neighbour st =
      match Random.State.int rng 4 with
      | 0 -> { st with sp = Sequence_pair.swap_first rng st.sp }
      | 1 -> { st with sp = Sequence_pair.swap_both rng st.sp }
      | 2 -> { st with sp = Sequence_pair.rotate_segment rng st.sp }
      | _ ->
        let i = Random.State.int rng n in
        let idx = Array.copy st.shape_idx in
        idx.(i) <- Random.State.int rng (Array.length menus.(i));
        { st with shape_idx = idx }
    in
    let st = ref { sp = Sequence_pair.identity n; shape_idx = Array.make n 0 } in
    let e, valid, plan, waste, wl = evaluate !st in
    let cur_energy = ref e in
    let best = ref (if valid then Some (e, plan, waste, wl) else None) in
    let trace = ref [ e ] in
    let temp = ref options.initial_temperature in
    for it = 1 to options.iterations do
      let cand = neighbour !st in
      let e, valid, plan, waste, wl = evaluate cand in
      let accept =
        e <= !cur_energy
        || Random.State.float rng 1. < exp ((!cur_energy -. e) /. max !temp 1e-6)
      in
      if accept then begin
        st := cand;
        cur_energy := e
      end;
      if valid then begin
        match !best with
        | Some (be, _, _, _) when be <= e -> ()
        | _ -> best := Some (e, plan, waste, wl)
      end;
      temp := !temp *. options.cooling;
      if it mod (max 1 (options.iterations / 32)) = 0 then
        trace :=
          (match !best with Some (be, _, _, _) -> be | None -> e) :: !trace
    done;
    match !best with
    | Some (_, plan, waste, wl) ->
      {
        plan = Some plan;
        wasted = Some waste;
        wirelength = Some wl;
        energy_trace = List.rev !trace;
        iterations = options.iterations;
      }
    | None ->
      {
        plan = None;
        wasted = None;
        wirelength = None;
        energy_trace = List.rev !trace;
        iterations = options.iterations;
      }
  end
