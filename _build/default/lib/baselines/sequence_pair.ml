type t = { s1 : int array; s2 : int array }

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun i ->
      if i < 0 || i >= n || seen.(i) then false
      else begin
        seen.(i) <- true;
        true
      end)
    a

let of_arrays s1 s2 =
  if Array.length s1 <> Array.length s2 then
    invalid_arg "Sequence_pair.of_arrays: size mismatch";
  if not (is_permutation s1 && is_permutation s2) then
    invalid_arg "Sequence_pair.of_arrays: not permutations";
  { s1 = Array.copy s1; s2 = Array.copy s2 }

let identity n = { s1 = Array.init n Fun.id; s2 = Array.init n Fun.id }

let size t = Array.length t.s1

type relation = Left | Right | Over | Under

let positions seq =
  let n = Array.length seq in
  let pos = Array.make n 0 in
  Array.iteri (fun idx e -> pos.(e) <- idx) seq;
  ignore n;
  pos

let relation t i j =
  let p1 = positions t.s1 and p2 = positions t.s2 in
  match (p1.(i) < p1.(j), p2.(i) < p2.(j)) with
  | true, true -> Left
  | false, false -> Right
  | true, false -> Over
  | false, true -> Under

(* Longest-path packing: x of each entity is the max over entities to
   its left of their right edge; same for y with "under". *)
let pack t shapes =
  let n = size t in
  let p1 = positions t.s1 and p2 = positions t.s2 in
  let order_x =
    (* topological order for "left of" = order of s1 works: if i left of
       j then p1(i) < p1(j) *)
    Array.copy t.s1
  in
  let x = Array.make n 0 and y = Array.make n 0 in
  Array.iter
    (fun j ->
      let best = ref 0 in
      for i = 0 to n - 1 do
        if i <> j && p1.(i) < p1.(j) && p2.(i) < p2.(j) then
          best := max !best (x.(i) + fst shapes.(i))
      done;
      x.(j) <- !best)
    order_x;
  (* "i above j" when p1(i) < p1(j) and p2(i) > p2(j); process in an
     order compatible with "above": decreasing p2 position works because
     if i above j then p2(i) > p2(j) ... so we need i before j, i.e.
     iterate s2 from the end. *)
  for idx = Array.length t.s2 - 1 downto 0 do
    let j = t.s2.(idx) in
    let best = ref 0 in
    for i = 0 to n - 1 do
      if i <> j && p1.(i) < p1.(j) && p2.(i) > p2.(j) then
        best := max !best (y.(i) + snd shapes.(i))
    done;
    y.(j) <- !best
  done;
  (* y currently grows downward from the top for "above"; flip is not
     needed because only relative positions matter for a packing *)
  Array.init n (fun i -> (x.(i), y.(i)))

let extract rects =
  let n = Array.length rects in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Device.Rect.overlaps rects.(i) rects.(j) then
        invalid_arg "Sequence_pair.extract: overlapping rectangles"
    done
  done;
  (* classic gridding construction: i before j in s1 iff i is left of or
     above j; in s2 iff left of or below *)
  let idx = Array.init n Fun.id in
  let before_s1 i j =
    let a = rects.(i) and b = rects.(j) in
    if Device.Rect.x2 a < b.Device.Rect.x then true
    else if Device.Rect.x2 b < a.Device.Rect.x then false
    else Device.Rect.y2 a < b.Device.Rect.y
  in
  let before_s2 i j =
    let a = rects.(i) and b = rects.(j) in
    if Device.Rect.x2 a < b.Device.Rect.x then true
    else if Device.Rect.x2 b < a.Device.Rect.x then false
    else Device.Rect.y2 b < a.Device.Rect.y
  in
  let s1 = Array.copy idx and s2 = Array.copy idx in
  let cmp before i j = if i = j then 0 else if before i j then -1 else 1 in
  Array.sort (cmp before_s1) s1;
  Array.sort (cmp before_s2) s2;
  { s1; s2 }

let swap2 rng arr =
  let n = Array.length arr in
  let a = Array.copy arr in
  if n >= 2 then begin
    let i = Random.State.int rng n in
    let j = Random.State.int rng n in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  end;
  a

let swap_first rng t = { t with s1 = swap2 rng t.s1 }

let swap_both rng t =
  let n = size t in
  if n < 2 then t
  else begin
    let i = Random.State.int rng n and j = Random.State.int rng n in
    let s1 = Array.copy t.s1 and s2 = Array.copy t.s2 in
    let sw a =
      (* swap the same two ENTITIES in both sequences *)
      let pi = ref 0 and pj = ref 0 in
      Array.iteri (fun k e -> if e = t.s1.(i) then pi := k else if e = t.s1.(j) then pj := k) a;
      let tmp = a.(!pi) in
      a.(!pi) <- a.(!pj);
      a.(!pj) <- tmp
    in
    if i <> j then begin
      sw s1;
      sw s2
    end;
    { s1; s2 }
  end

let rotate_segment rng t =
  let n = size t in
  if n < 3 then swap_first rng t
  else begin
    let s1 = Array.copy t.s1 in
    let i = Random.State.int rng (n - 2) in
    let len = 2 + Random.State.int rng (min 3 (n - i - 1)) in
    let seg = Array.sub s1 i len in
    for k = 0 to len - 1 do
      s1.(i + k) <- seg.((k + 1) mod len)
    done;
    { t with s1 }
  end
