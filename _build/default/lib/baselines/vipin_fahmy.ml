open Device

type outcome = {
  plan : Floorplan.t option;
  wasted : int option;
  wirelength : float option;
}

(* Kernel-aligned candidate windows for a demand: a contiguous run of
   whole portions and the minimal height covering the demand. *)
let kernel_windows part demand =
  let portions = part.Partition.portions in
  let np = Array.length portions in
  let height = Partition.height part in
  let kind p = (portions.(p).Partition.tile).Resource.kind in
  let out = ref [] in
  for p0 = 0 to np - 1 do
    for p1 = p0 to np - 1 do
      (* columns per kind over portions p0..p1 *)
      let cols k =
        let acc = ref 0 in
        for p = p0 to p1 do
          if Resource.equal_kind (kind p) k then
            acc := !acc + Partition.portion_width portions.(p)
        done;
        !acc
      in
      let hmin =
        List.fold_left
          (fun acc (k, need) ->
            match acc with
            | None -> None
            | Some h ->
              if need = 0 then Some h
              else
                let c = cols k in
                if c = 0 then None
                else Some (max h ((need + c - 1) / c)))
          (Some 1) demand
      in
      match hmin with
      | Some h when h <= height ->
        let x = portions.(p0).Partition.x1 in
        let w = portions.(p1).Partition.x2 - x + 1 in
        out := (x, w, h) :: !out
      | Some _ | None -> ()
    done
  done;
  List.rev !out

let solve_order part order =
  let height = Partition.height part in
  let placed = ref [] in
  let ok = ref true in
  List.iter
    (fun (r : Spec.region) ->
      if !ok then begin
        let windows = kernel_windows part r.Spec.demand in
        (* cheapest wasted frames first, then leftmost *)
        let scored =
          List.filter_map
            (fun (x, w, h) ->
              let fits = ref [] in
              for y = 1 to height - h + 1 do
                let rect = Rect.make ~x ~y ~w ~h in
                if
                  (not (Grid.rect_hits_forbidden part.Partition.grid rect))
                  && not (List.exists (fun (_, r') -> Rect.overlaps rect r') !placed)
                then fits := rect :: !fits
              done;
              match List.rev !fits with
              | [] -> None
              | rect :: _ ->
                Some (Compat.wasted_frames part rect r.Spec.demand, rect))
            windows
        in
        match List.sort compare scored with
        | [] -> ok := false
        | (_, rect) :: _ -> placed := (r.Spec.r_name, rect) :: !placed
      end)
    order;
  if !ok then
    Some
      (Floorplan.make
         (List.rev_map
            (fun (name, rect) -> { Floorplan.p_region = name; p_rect = rect })
            !placed)
         [])
  else None

let solve part (spec : Spec.t) =
  let by_demand =
    List.sort
      (fun (a : Spec.region) b ->
        compare
          (Resource.demand_tiles b.Spec.demand)
          (Resource.demand_tiles a.Spec.demand))
      spec.Spec.regions
  in
  let plans =
    List.filter_map
      (fun order -> solve_order part order)
      [ spec.Spec.regions; by_demand ]
  in
  let score p = Floorplan.wasted_frames part spec p in
  match List.sort (fun a b -> compare (score a) (score b)) plans with
  | [] -> { plan = None; wasted = None; wirelength = None }
  | best :: _ ->
    {
      plan = Some best;
      wasted = Some (score best);
      wirelength = Some (Floorplan.wirelength spec best);
    }
