lib/baselines/vipin_fahmy.ml: Array Compat Device Floorplan Grid List Partition Rect Resource Spec
