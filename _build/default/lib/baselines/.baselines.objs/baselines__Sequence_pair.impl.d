lib/baselines/sequence_pair.ml: Array Device Fun Random
