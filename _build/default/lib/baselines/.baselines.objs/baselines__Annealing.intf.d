lib/baselines/annealing.mli: Device
