lib/baselines/sequence_pair.mli: Device Random
