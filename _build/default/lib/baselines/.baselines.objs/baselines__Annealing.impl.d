lib/baselines/annealing.ml: Array Compat Device Floorplan Grid Hashtbl List Partition Random Rect Resource Search Sequence_pair Spec
