lib/baselines/vipin_fahmy.mli: Device
