(** Sequence-pair floorplan representation.

    A pair of permutations of the n entities encodes pairwise relative
    positions: if [a] precedes [b] in both sequences, [a] is left of
    [b]; if [a] precedes [b] only in the first, [a] is above [b].
    Packing with given shapes is the classic longest-path evaluation. *)

type t = { s1 : int array; s2 : int array }

val identity : int -> t
val of_arrays : int array -> int array -> t
(** @raise Invalid_argument if the arrays are not permutations of the
    same size. *)

val size : t -> int

type relation = Left | Right | Over | Under

val relation : t -> int -> int -> relation
(** Relative position of entity [i] with respect to [j]. *)

val pack : t -> (int * int) array -> (int * int) array
(** [pack sp shapes] returns the bottom-left positions (0-based
    [(x, y)]) of the minimal packing where entity [i] has width/height
    [shapes.(i)].  O(n^2). *)

val extract : Device.Rect.t array -> t
(** Sequence pair of an overlap-free placement (inverse of packing up
    to compaction).  @raise Invalid_argument on overlapping rects. *)

(* Neighbourhood moves for annealing; all return fresh pairs. *)
val swap_first : Random.State.t -> t -> t
val swap_both : Random.State.t -> t -> t
val rotate_segment : Random.State.t -> t -> t
