(** Reconfiguration-centric tessellation heuristic in the style of
    Vipin-Fahmy (ref. [8] of the paper).

    The device is tessellated into columnar kernels (our columnar
    portions); each region is allocated a window of {e whole} adjacent
    kernels at the minimal height covering its demand, scanning left to
    right, greedily and without backtracking.  The kernel quantization
    is what makes this heuristic waste more configuration frames than
    the MILP floorplanners (Table II's 466 vs 306 on the authors'
    device), while being essentially instantaneous. *)

type outcome = {
  plan : Device.Floorplan.t option;
  wasted : int option;
  wirelength : float option;
}

val solve : Device.Partition.t -> Device.Spec.t -> outcome
(** Greedy tessellation in specification order.  Tries the pipeline
    order and the decreasing-demand order; returns the cheaper valid
    result. *)
