(** Simulated-annealing floorplanner in the style of Bolchini et al.
    (ref. [9] of the paper): anneal over a sequence pair plus a shape
    choice per region, evaluating packings on the columnar device with
    penalties for resource shortfalls, forbidden overlaps and device
    overflow, and optimizing wire length plus wasted frames.

    Not relocation-aware — it is the heuristic baseline and, via
    {!Ho.seed_of_search}-style seeding, a front-end for HO. *)

type options = {
  iterations : int;
  initial_temperature : float;
  cooling : float;  (** geometric factor per step *)
  seed : int;
  wirelength_weight : float;  (** relative to wasted frames *)
}

val default_options : options

type outcome = {
  plan : Device.Floorplan.t option;  (** best valid floorplan found *)
  wasted : int option;
  wirelength : float option;
  energy_trace : float list;  (** sampled best-energy values, oldest first *)
  iterations : int;
}

val solve :
  ?options:options -> Device.Partition.t -> Device.Spec.t -> outcome
