type t = { x : int; y : int; w : int; h : int }

let make ~x ~y ~w ~h =
  if w <= 0 || h <= 0 then
    invalid_arg (Printf.sprintf "Rect.make: non-positive size %dx%d" w h);
  if x < 1 || y < 1 then
    invalid_arg (Printf.sprintf "Rect.make: origin (%d,%d) below 1" x y);
  { x; y; w; h }

let x2 r = r.x + r.w - 1
let y2 r = r.y + r.h - 1
let area r = r.w * r.h

let overlaps a b =
  a.x <= x2 b && b.x <= x2 a && a.y <= y2 b && b.y <= y2 a

let contains_point r px py = r.x <= px && px <= x2 r && r.y <= py && py <= y2 r

let contains outer inner =
  outer.x <= inner.x && x2 inner <= x2 outer && outer.y <= inner.y
  && y2 inner <= y2 outer

let within ~width ~height r = r.x >= 1 && r.y >= 1 && x2 r <= width && y2 r <= height

let center r =
  ( float_of_int r.x +. ((float_of_int r.w -. 1.) /. 2.),
    float_of_int r.y +. ((float_of_int r.h -. 1.) /. 2.) )

let manhattan_centers a b =
  let ax, ay = center a and bx, by = center b in
  abs_float (ax -. bx) +. abs_float (ay -. by)

let equal (a : t) b = a = b
let compare (a : t) b = compare a b

let pp ppf r = Format.fprintf ppf "(x=%d y=%d w=%d h=%d)" r.x r.y r.w r.h
let to_string r = Format.asprintf "%a" pp r
