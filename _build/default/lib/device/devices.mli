(** Predefined devices: the Virtex-5 FX70T tile model used by the
    paper's evaluation, the toy devices of Figures 1-3, and random
    devices for property tests. *)

val virtex5_fx70t : Grid.t
(** Tile model of the XC5VFX70T: 42 columns x 8 clock-region rows
    (35 CLB, 5 BRAM and 2 DSP columns; 36/30/28 configuration frames per
    tile as in Section VI) with the embedded PowerPC440 block as a
    forbidden area at the left-center of the fabric. *)

val fig1 : Grid.t
(** Toy device for the compatible-areas example of Figure 1. *)

val fig1_areas : (string * Rect.t) list
(** The areas A, B, C of Figure 1: A and B compatible, C not. *)

val fig2 : Grid.t
(** Toy device with two hard blocks, as in the columnar-partitioning
    example of Figure 2 (6 portions, forbidden areas f1 and f2). *)

val fig3 : Grid.t
(** Five-portion device for the offset-variables example of Figure 3. *)

val fig3_region : Rect.t
(** The region drawn in Figure 3 (covers portions 2-4). *)

val virtex7_small : Grid.t
(** Small Virtex-7-style part: fully columnar, no forbidden areas (the
    paper notes Virtex-7 devices comply with the columnar description). *)

val mini : Grid.t
(** Small columnar device (10x4) for MILP-scale tests and examples. *)

val random : ?max_width:int -> ?max_height:int -> Random.State.t -> Grid.t
(** Random columnar device: random column kinds, size, and possibly one
    forbidden block.  Always columnar-partitionable. *)
