type kind = Clb | Bram | Dsp | Io

let all_kinds = [ Clb; Bram; Dsp; Io ]

let kind_to_string = function
  | Clb -> "CLB"
  | Bram -> "BRAM"
  | Dsp -> "DSP"
  | Io -> "IO"

let kind_to_char = function Clb -> 'C' | Bram -> 'B' | Dsp -> 'D' | Io -> 'I'

let kind_of_char = function
  | 'C' | 'c' -> Some Clb
  | 'B' | 'b' -> Some Bram
  | 'D' | 'd' -> Some Dsp
  | 'I' | 'i' -> Some Io
  | _ -> None

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let equal_kind (a : kind) b = a = b
let compare_kind (a : kind) b = compare a b

type tile_type = { kind : kind; variant : int }

let tile_type ?(variant = 0) kind = { kind; variant }
let equal_tile_type (a : tile_type) b = a = b
let compare_tile_type (a : tile_type) b = compare a b

let pp_tile_type ppf { kind; variant } =
  if variant = 0 then pp_kind ppf kind
  else Format.fprintf ppf "%a'%d" pp_kind kind variant

let default_frames = function Clb -> 36 | Bram -> 30 | Dsp -> 28 | Io -> 36

type demand = (kind * int) list

let demand_tiles d = List.fold_left (fun acc (_, n) -> acc + n) 0 d

let demand_get d k =
  List.fold_left (fun acc (k', n) -> if equal_kind k k' then acc + n else acc) 0 d

let demand_frames ~frames d =
  List.fold_left (fun acc (k, n) -> acc + (frames k * n)) 0 d

let pp_demand ppf d =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (k, n) -> Format.fprintf ppf "%d %a" n pp_kind k)
    ppf
    (List.filter (fun (_, n) -> n > 0) d)
