let clb = Resource.tile_type Resource.Clb
let bram = Resource.tile_type Resource.Bram
let dsp = Resource.tile_type Resource.Dsp

(* Column plan of the XC5VFX70T model: 35 CLB, 5 BRAM, 2 DSP columns.
   The DSP columns sit next to 7-wide CLB runs so that the SDR design's
   DSP-hungry regions have exactly two 5-row windows available, which is
   what makes duplicating the matched filter / video decoder infeasible
   (Section VI's feasibility analysis). *)
let fx70t_columns =
  let c n = List.init n (fun _ -> clb) in
  List.concat
    [
      c 2; [ bram ]; c 7; [ dsp ]; c 4; [ bram ]; c 4; [ bram ]; c 5; [ bram ];
      c 7; [ dsp ]; c 4; [ bram ]; c 2;
    ]

let virtex5_fx70t =
  Grid.of_columns ~name:"XC5VFX70T"
    ~forbidden:[ Rect.make ~x:1 ~y:4 ~w:2 ~h:2 (* PowerPC440 block *) ]
    ~rows:8 fx70t_columns

let fig1 =
  Grid.of_columns ~name:"fig1" ~rows:6
    [ clb; bram; clb; clb; bram; clb; clb; bram ]

let fig1_areas =
  [
    ("A", Rect.make ~x:1 ~y:1 ~w:2 ~h:2);
    ("B", Rect.make ~x:4 ~y:3 ~w:2 ~h:2);
    ("C", Rect.make ~x:2 ~y:4 ~w:2 ~h:2);
  ]

let fig2 =
  Grid.of_columns ~name:"fig2" ~rows:6
    ~forbidden:
      [ Rect.make ~x:1 ~y:3 ~w:2 ~h:2; Rect.make ~x:7 ~y:5 ~w:1 ~h:1 ]
    [ clb; clb; bram; clb; clb; dsp; clb; clb; bram ]

let fig3 =
  Grid.of_columns ~name:"fig3" ~rows:4
    [ clb; clb; bram; clb; clb; dsp; dsp; clb ]

let fig3_region = Rect.make ~x:3 ~y:2 ~w:5 ~h:2

(* A small Virtex-7-style part: the paper notes Virtex-7 devices have
   no fabric-breaking hard processors, so the whole device is columnar
   with no forbidden areas. *)
let virtex7_small =
  let c n = List.init n (fun _ -> clb) in
  Grid.of_columns ~name:"XC7-small" ~rows:6
    (List.concat
       [ c 4; [ bram ]; c 5; [ dsp ]; c 5; [ bram ]; c 5; [ dsp ]; c 5; [ bram ]; c 4 ])

let mini =
  Grid.of_columns ~name:"mini" ~rows:4
    [ clb; clb; bram; clb; clb; dsp; clb; clb; bram; clb ]

let random ?(max_width = 12) ?(max_height = 6) rng =
  let width = 2 + Random.State.int rng (max_width - 1) in
  let height = 2 + Random.State.int rng (max_height - 1) in
  let kinds = [| clb; clb; clb; bram; dsp |] in
  let cols =
    List.init width (fun _ -> kinds.(Random.State.int rng (Array.length kinds)))
  in
  let forbidden =
    if Random.State.int rng 3 = 0 && width > 2 && height > 2 then begin
      let w = 1 + Random.State.int rng 2 and h = 1 + Random.State.int rng 2 in
      let w = min w (width - 1) and h = min h (height - 1) in
      let x = 1 + Random.State.int rng (width - w) in
      let y = 1 + Random.State.int rng (height - h) in
      [ Rect.make ~x ~y ~w ~h ]
    end
    else []
  in
  Grid.of_columns ~name:"random" ~forbidden ~rows:height cols
