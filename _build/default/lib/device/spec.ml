type region = { r_name : string; demand : Resource.demand }

type net = { src : string; dst : string; weight : float }

type reloc_mode = Hard | Soft of float

type reloc_req = { target : string; copies : int; mode : reloc_mode }

type t = {
  s_name : string;
  regions : region list;
  nets : net list;
  relocs : reloc_req list;
}

let make ?(nets = []) ?(relocs = []) ~name regions =
  let names = List.map (fun r -> r.r_name) regions in
  let module S = Set.Make (String) in
  let set = S.of_list names in
  if S.cardinal set <> List.length names then
    invalid_arg "Spec.make: duplicate region names";
  List.iter
    (fun r ->
      if r.demand = [] || List.exists (fun (_, n) -> n < 0) r.demand then
        invalid_arg (Printf.sprintf "Spec.make: bad demand for %s" r.r_name))
    regions;
  List.iter
    (fun n ->
      if not (S.mem n.src set && S.mem n.dst set) then
        invalid_arg
          (Printf.sprintf "Spec.make: net %s-%s names unknown region" n.src n.dst))
    nets;
  let seen_targets = ref S.empty in
  List.iter
    (fun rr ->
      if not (S.mem rr.target set) then
        invalid_arg
          (Printf.sprintf "Spec.make: relocation request for unknown region %s"
             rr.target);
      if rr.copies <= 0 then
        invalid_arg "Spec.make: relocation request with non-positive copies";
      if S.mem rr.target !seen_targets then
        invalid_arg
          (Printf.sprintf "Spec.make: duplicate relocation request for %s"
             rr.target);
      seen_targets := S.add rr.target !seen_targets)
    relocs;
  { s_name = name; regions; nets; relocs }

let find_region t name = List.find_opt (fun r -> r.r_name = name) t.regions

let region t name =
  match find_region t name with Some r -> r | None -> raise Not_found

let region_names t = List.map (fun r -> r.r_name) t.regions

let total_demand t =
  let tally = List.map (fun k -> (k, ref 0)) Resource.all_kinds in
  List.iter
    (fun r ->
      List.iter
        (fun (k, n) ->
          let cell = List.assoc k tally in
          cell := !cell + n)
        r.demand)
    t.regions;
  List.filter_map (fun (k, r) -> if !r > 0 then Some (k, !r) else None) tally

let total_fc_copies t = List.fold_left (fun acc rr -> acc + rr.copies) 0 t.relocs

let chain_nets ?(weight = 1.) names =
  let rec go = function
    | a :: (b :: _ as rest) -> { src = a; dst = b; weight } :: go rest
    | [ _ ] | [] -> []
  in
  go names

let with_relocs t relocs = make ~nets:t.nets ~relocs ~name:t.s_name t.regions

let pp ppf t =
  Format.fprintf ppf "design %s: %d regions, %d nets, %d relocation requests"
    t.s_name (List.length t.regions) (List.length t.nets)
    (List.length t.relocs)
