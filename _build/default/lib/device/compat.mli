(** Area compatibility and relocation sites (Definitions .1 and .2).

    Two areas are {e compatible} when they have the same shape, size and
    relative positioning of tile types — on a columnar-partitioned
    device: equal width, equal height and equal left-to-right column
    type sequence.  A bitstream may be relocated from an area to any
    compatible area that is free (Definition .2). *)

type signature = int array
(** Column type-id sequence of a rectangle, length = width. *)

val signature : Partition.t -> Rect.t -> signature
(** @raise Invalid_argument if the rectangle exceeds the device. *)

val equal_signature : signature -> signature -> bool

val compatible : Partition.t -> Rect.t -> Rect.t -> bool
(** Same width, height, and column type sequence.  Both rectangles must
    be inside the device.  Reflexive and symmetric. *)

val compatible_columns : Partition.t -> Rect.t -> int list
(** All x positions (including the rectangle's own) where a rectangle of
    the same width has an equal column signature. *)

val relocation_sites : ?avoid_forbidden:bool -> Partition.t -> Rect.t -> Rect.t list
(** Every placement of a rectangle compatible with the argument
    (including the argument itself), i.e. all compatible x positions
    crossed with all vertical positions.  With [avoid_forbidden] (the
    default) sites overlapping a forbidden area are dropped. *)

val free_compatible_sites :
  ?avoid_forbidden:bool ->
  occupied:Rect.t list ->
  Partition.t ->
  Rect.t ->
  Rect.t list
(** {!relocation_sites} minus those overlapping any [occupied]
    rectangle — the candidate free-compatible areas of Definition .2
    for a given floorplan state. *)

val covered_demand : Partition.t -> Rect.t -> Resource.demand
(** Tiles covered per kind, via the columnar structure. *)

val satisfies : Partition.t -> Rect.t -> Resource.demand -> bool
(** Does the rectangle cover at least the demanded tiles of each kind? *)

val wasted_frames : Partition.t -> Rect.t -> Resource.demand -> int
(** Configuration frames covered beyond the demand (the paper's wasted
    frames metric).  Negative kinds never offset positive ones. *)
