(** Floorplan solutions: region placements plus identified
    free-compatible areas, their validation, and the paper's metrics
    (wasted frames, wire length). *)

type placement = { p_region : string; p_rect : Rect.t }

type fc_area = {
  fc_region : string;  (** region this area is free-compatible with *)
  fc_index : int;  (** 1-based copy number, for display ("Signal Decoder 2") *)
  fc_rect : Rect.t;
}

type t = { placements : placement list; fc_areas : fc_area list }

val empty : t
val make : placement list -> fc_area list -> t

val placement_of : t -> string -> placement option
val rect_of : t -> string -> Rect.t option
val all_rects : t -> Rect.t list
(** Region rectangles followed by free-compatible areas. *)

val fc_count : t -> int
val fc_for : t -> string -> fc_area list

val validate : Partition.t -> Spec.t -> t -> (unit, string list) result
(** Full check of a solution:
    - every region of the spec is placed exactly once, inside the device;
    - no two rectangles (regions or free-compatible areas) overlap;
    - no rectangle overlaps a forbidden area;
    - each region's rectangle covers its tile demand;
    - each free-compatible area is compatible (Definition .1) with its
      region's placement;
    - hard relocation requests are satisfied in number.
    Returns all violations, not just the first. *)

val is_valid : Partition.t -> Spec.t -> t -> bool

val wasted_frames : Partition.t -> Spec.t -> t -> int
(** Frames covered by region rectangles beyond their demands.  Frames
    under free-compatible areas are {e not} counted (Section VI: those
    areas only reserve free space). *)

val wirelength : Spec.t -> t -> float
(** Sum over nets of weight x Manhattan distance between the centers of
    the two regions' rectangles.  @raise Invalid_argument if a net's
    region is unplaced. *)

val render : Partition.t -> t -> string
(** ASCII floorplan in the style of Figures 4-5: regions as digits or
    letters, free-compatible areas as the lowercase initial of their
    region, forbidden tiles as ['#']. *)

val legend : t -> (char * string) list
(** Mark characters used by {!render}, in rendering order. *)

val pp : Format.formatter -> t -> unit
