type signature = int array

let check_inside part rect fn =
  if
    not
      (Rect.within ~width:(Partition.width part) ~height:(Partition.height part)
         rect)
  then
    invalid_arg
      (Printf.sprintf "Compat.%s: %s outside device" fn (Rect.to_string rect))

let signature part rect =
  check_inside part rect "signature";
  Array.init rect.Rect.w (fun i -> Partition.column_tid part (rect.Rect.x + i))

let equal_signature (a : signature) b = a = b

let compatible part a b =
  a.Rect.w = b.Rect.w && a.Rect.h = b.Rect.h
  && equal_signature (signature part a) (signature part b)

let compatible_columns part rect =
  let sg = signature part rect in
  let w = rect.Rect.w in
  let xs = ref [] in
  for x = Partition.width part - w + 1 downto 1 do
    let sg' =
      Array.init w (fun i -> Partition.column_tid part (x + i))
    in
    if equal_signature sg sg' then xs := x :: !xs
  done;
  !xs

let relocation_sites ?(avoid_forbidden = true) part rect =
  let height = Partition.height part in
  let keep r =
    (not avoid_forbidden) || not (Grid.rect_hits_forbidden part.Partition.grid r)
  in
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y ->
          let r = Rect.make ~x ~y ~w:rect.Rect.w ~h:rect.Rect.h in
          if keep r then Some r else None)
        (List.init (height - rect.Rect.h + 1) (fun i -> i + 1)))
    (compatible_columns part rect)

let free_compatible_sites ?avoid_forbidden ~occupied part rect =
  List.filter
    (fun site -> not (List.exists (Rect.overlaps site) occupied))
    (relocation_sites ?avoid_forbidden part rect)

let covered_demand part rect =
  check_inside part rect "covered_demand";
  let counts = List.map (fun k -> (k, ref 0)) Resource.all_kinds in
  for i = 0 to rect.Rect.w - 1 do
    let ty = Partition.column_type part (rect.Rect.x + i) in
    let r = List.assoc ty.Resource.kind counts in
    r := !r + rect.Rect.h
  done;
  List.filter_map (fun (k, r) -> if !r > 0 then Some (k, !r) else None) counts

let satisfies part rect demand =
  let covered = covered_demand part rect in
  List.for_all
    (fun (k, n) -> Resource.demand_get covered k >= n)
    demand

let wasted_frames part rect demand =
  let covered = covered_demand part rect in
  let frames = Grid.frames part.Partition.grid in
  List.fold_left
    (fun acc k ->
      let extra = Resource.demand_get covered k - Resource.demand_get demand k in
      acc + (frames k * max 0 extra))
    0 Resource.all_kinds
