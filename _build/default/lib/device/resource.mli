(** FPGA resource and tile-type model.

    Following the paper's device model, the basic block is a {e tile}
    (one column of one clock region).  Two tiles are of the same
    {e type} (Definition .1) iff they hold the same resources {e and}
    the same configuration-data layout; the latter is modelled by a
    [variant] tag so that tests can distinguish resource-identical but
    configuration-different tiles. *)

type kind =
  | Clb
  | Bram
  | Dsp
  | Io  (** I/O column tiles (not requestable by regions) *)

val all_kinds : kind list

val kind_to_string : kind -> string
val kind_of_char : char -> kind option
val kind_to_char : kind -> char
val pp_kind : Format.formatter -> kind -> unit
val equal_kind : kind -> kind -> bool
val compare_kind : kind -> kind -> int

type tile_type = { kind : kind; variant : int }
(** Definition .1 tile type: resources plus configuration-data identity. *)

val tile_type : ?variant:int -> kind -> tile_type
val equal_tile_type : tile_type -> tile_type -> bool
val compare_tile_type : tile_type -> tile_type -> int
val pp_tile_type : Format.formatter -> tile_type -> unit

val default_frames : kind -> int
(** Configuration frames per tile on Virtex-5: CLB 36, BRAM 30, DSP 28
    (Section VI); IO counted as CLB-sized. *)

type demand = (kind * int) list
(** Resource requirement of a region, in tiles per kind. *)

val demand_tiles : demand -> int
val demand_get : demand -> kind -> int
val demand_frames : frames:(kind -> int) -> demand -> int
(** Least number of configuration frames covering the demand (the
    "# Frames" column of Table I). *)

val pp_demand : Format.formatter -> demand -> unit
