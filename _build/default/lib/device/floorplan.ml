type placement = { p_region : string; p_rect : Rect.t }

type fc_area = { fc_region : string; fc_index : int; fc_rect : Rect.t }

type t = { placements : placement list; fc_areas : fc_area list }

let empty = { placements = []; fc_areas = [] }
let make placements fc_areas = { placements; fc_areas }

let placement_of t name =
  List.find_opt (fun p -> p.p_region = name) t.placements

let rect_of t name = Option.map (fun p -> p.p_rect) (placement_of t name)

let all_rects t =
  List.map (fun p -> p.p_rect) t.placements
  @ List.map (fun f -> f.fc_rect) t.fc_areas

let fc_count t = List.length t.fc_areas
let fc_for t name = List.filter (fun f -> f.fc_region = name) t.fc_areas

let validate part (spec : Spec.t) t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let width = Partition.width part and height = Partition.height part in
  (* placement presence and uniqueness *)
  List.iter
    (fun (r : Spec.region) ->
      match
        List.filter (fun p -> p.p_region = r.Spec.r_name) t.placements
      with
      | [] -> err "region %s is not placed" r.Spec.r_name
      | [ _ ] -> ()
      | _ -> err "region %s is placed more than once" r.Spec.r_name)
    spec.Spec.regions;
  List.iter
    (fun p ->
      if Spec.find_region spec p.p_region = None then
        err "placement for unknown region %s" p.p_region)
    t.placements;
  (* geometric checks on every rectangle *)
  let named_rects =
    List.map (fun p -> (p.p_region, p.p_rect)) t.placements
    @ List.map
        (fun f -> (Printf.sprintf "%s %d" f.fc_region f.fc_index, f.fc_rect))
        t.fc_areas
  in
  List.iter
    (fun (name, r) ->
      if not (Rect.within ~width ~height r) then
        err "%s at %s exceeds the %dx%d device" name (Rect.to_string r) width
          height
      else if Grid.rect_hits_forbidden part.Partition.grid r then
        err "%s at %s overlaps a forbidden area" name (Rect.to_string r))
    named_rects;
  let rec pairwise = function
    | [] -> ()
    | (na, ra) :: rest ->
      List.iter
        (fun (nb, rb) ->
          if Rect.overlaps ra rb then err "%s overlaps %s" na nb)
        rest;
      pairwise rest
  in
  pairwise named_rects;
  (* resource coverage *)
  List.iter
    (fun (r : Spec.region) ->
      match rect_of t r.Spec.r_name with
      | None -> ()
      | Some rect ->
        if Rect.within ~width ~height rect then
          if not (Compat.satisfies part rect r.Spec.demand) then
            err "region %s at %s does not cover its demand (%a)" r.Spec.r_name
              (Rect.to_string rect) Resource.pp_demand r.Spec.demand)
    spec.Spec.regions;
  (* free-compatible areas: compatibility with their region *)
  List.iter
    (fun f ->
      match rect_of t f.fc_region with
      | None -> err "free-compatible area for unplaced region %s" f.fc_region
      | Some rect ->
        if
          Rect.within ~width ~height rect
          && Rect.within ~width ~height f.fc_rect
          && not (Compat.compatible part rect f.fc_rect)
        then
          err "area %s %d at %s is not compatible with the region at %s"
            f.fc_region f.fc_index (Rect.to_string f.fc_rect)
            (Rect.to_string rect))
    t.fc_areas;
  (* hard relocation requests satisfied in number *)
  List.iter
    (fun (rr : Spec.reloc_req) ->
      match rr.Spec.mode with
      | Spec.Soft _ -> ()
      | Spec.Hard ->
        let got = List.length (fc_for t rr.Spec.target) in
        if got < rr.Spec.copies then
          err "region %s has %d free-compatible areas, %d required"
            rr.Spec.target got rr.Spec.copies)
    spec.Spec.relocs;
  match List.rev !errs with [] -> Ok () | es -> Error es

let is_valid part spec t = validate part spec t = Ok ()

let wasted_frames part (spec : Spec.t) t =
  List.fold_left
    (fun acc (r : Spec.region) ->
      match rect_of t r.Spec.r_name with
      | None -> acc
      | Some rect -> acc + Compat.wasted_frames part rect r.Spec.demand)
    0 spec.Spec.regions

let wirelength (spec : Spec.t) t =
  List.fold_left
    (fun acc (n : Spec.net) ->
      match (rect_of t n.Spec.src, rect_of t n.Spec.dst) with
      | Some a, Some b -> acc +. (n.Spec.weight *. Rect.manhattan_centers a b)
      | _ ->
        invalid_arg
          (Printf.sprintf "Floorplan.wirelength: net %s-%s has unplaced region"
             n.Spec.src n.Spec.dst))
    0. spec.Spec.nets

let region_marks t =
  let digits = "123456789" in
  List.mapi
    (fun i p ->
      let c =
        if i < String.length digits then digits.[i]
        else Char.chr (Char.code 'A' + i - String.length digits)
      in
      (c, p))
    t.placements

(* uppercase so marks never collide with the lowercase background tiles *)
let fc_mark f =
  match f.fc_region with
  | "" -> '?'
  | s -> Char.uppercase_ascii s.[0]

let legend t =
  let fc_groups =
    List.fold_left
      (fun acc f ->
        let c = fc_mark f in
        match List.assoc_opt c acc with
        | Some n -> (c, max n f.fc_index) :: List.remove_assoc c acc
        | None -> (c, f.fc_index) :: acc)
      [] t.fc_areas
  in
  let fc_name c =
    match List.find_opt (fun f -> fc_mark f = c) t.fc_areas with
    | Some f -> f.fc_region
    | None -> "?"
  in
  List.map (fun (c, p) -> (c, p.p_region)) (region_marks t)
  @ List.rev_map
      (fun (c, n) ->
        ( c,
          if n = 1 then Printf.sprintf "%s (free-compatible area)" (fc_name c)
          else Printf.sprintf "%s (free-compatible areas 1-%d)" (fc_name c) n ))
      fc_groups

let render part t =
  let marks =
    List.map (fun (c, p) -> (p.p_rect, c)) (region_marks t)
    @ List.map (fun f -> (f.fc_rect, fc_mark f)) t.fc_areas
  in
  let picture = Grid.render ~marks part.Partition.grid in
  let legend_lines =
    List.map (fun (c, name) -> Printf.sprintf "  %c = %s" c name) (legend t)
  in
  String.concat "\n" (picture :: legend_lines)

let pp ppf t =
  Format.fprintf ppf "%d regions, %d free-compatible areas"
    (List.length t.placements) (fc_count t)
