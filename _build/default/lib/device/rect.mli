(** Axis-aligned rectangles on the tile grid.

    Coordinates are 1-based, matching the paper's model ([x >= 1]); a
    rectangle spans columns [x .. x + w - 1] and rows [y .. y + h - 1],
    inclusive. *)

type t = { x : int; y : int; w : int; h : int }

val make : x:int -> y:int -> w:int -> h:int -> t
(** @raise Invalid_argument if [w <= 0] or [h <= 0] or [x,y < 1]. *)

val x2 : t -> int
(** Rightmost column covered. *)

val y2 : t -> int
(** Bottommost row covered. *)

val area : t -> int

val overlaps : t -> t -> bool
val contains_point : t -> int -> int -> bool
val contains : t -> t -> bool
(** [contains outer inner]. *)

val within : width:int -> height:int -> t -> bool
(** Entirely inside a [width] x [height] device. *)

val center : t -> float * float

val manhattan_centers : t -> t -> float
(** Manhattan distance between centers (wire-length building block). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
