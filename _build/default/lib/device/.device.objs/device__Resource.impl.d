lib/device/resource.ml: Format List
