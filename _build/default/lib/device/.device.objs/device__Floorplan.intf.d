lib/device/floorplan.mli: Format Partition Rect Spec
