lib/device/io.ml: Buffer Char Fun Grid List Printf Rect Resource Spec String
