lib/device/devices.mli: Grid Random Rect
