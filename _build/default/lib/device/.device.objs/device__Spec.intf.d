lib/device/spec.mli: Format Resource
