lib/device/partition.ml: Array Format Grid List Option Printf Rect Resource
