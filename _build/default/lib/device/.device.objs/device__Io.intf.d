lib/device/io.mli: Grid Spec
