lib/device/compat.mli: Partition Rect Resource
