lib/device/devices.ml: Array Grid List Random Rect Resource
