lib/device/grid.ml: Array Buffer Char Format List Printf Rect Resource String
