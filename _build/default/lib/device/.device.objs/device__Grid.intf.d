lib/device/grid.mli: Format Rect Resource
