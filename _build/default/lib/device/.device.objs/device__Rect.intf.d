lib/device/rect.mli: Format
