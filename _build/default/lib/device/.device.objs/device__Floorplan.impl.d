lib/device/floorplan.ml: Char Compat Format Grid List Option Partition Printf Rect Resource Spec String
