lib/device/rect.ml: Format Printf
