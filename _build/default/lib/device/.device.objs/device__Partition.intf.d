lib/device/partition.mli: Format Grid Rect Resource
