lib/device/spec.ml: Format List Printf Resource Set String
