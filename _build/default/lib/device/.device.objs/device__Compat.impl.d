lib/device/compat.ml: Array Grid List Partition Printf Rect Resource
