(** Floorplanning problem specification: reconfigurable regions with
    their tile demands, the nets connecting them (for wire length), and
    the relocation requirements of Sections IV-V. *)

type region = { r_name : string; demand : Resource.demand }

type net = { src : string; dst : string; weight : float }
(** A connection between two regions; [weight] is the bus width. *)

type reloc_mode =
  | Hard  (** relocation as a constraint (Section IV) *)
  | Soft of float  (** relocation as a metric with weight [cw] (Section V) *)

type reloc_req = { target : string; copies : int; mode : reloc_mode }
(** Request [copies] free-compatible areas for region [target]. *)

type t = {
  s_name : string;
  regions : region list;
  nets : net list;
  relocs : reloc_req list;
}

val make :
  ?nets:net list -> ?relocs:reloc_req list -> name:string -> region list -> t
(** @raise Invalid_argument on duplicate region names, nets or
    relocation requests naming unknown regions, or non-positive
    demands/copies. *)

val region : t -> string -> region
(** @raise Not_found *)

val find_region : t -> string -> region option
val region_names : t -> string list
val total_demand : t -> Resource.demand
val total_fc_copies : t -> int

val chain_nets : ?weight:float -> string list -> net list
(** Connect the given regions in sequential order (the SDR design's
    64-bit bus chain). *)

val with_relocs : t -> reloc_req list -> t
(** Same design, different relocation requirements (SDR vs SDR2/SDR3). *)

val pp : Format.formatter -> t -> unit
