(** The paper's composite objective (Eq. 14):

    [min q1*WL/WLmax + q2*P/Pmax + q3*R/Rmax + q4*RL/RLmax]

    with wire length, perimeter, wasted-resource and relocation cost
    terms, each normalized by its maximum so the [q] weights are
    comparable. *)

type weights = {
  q_wirelength : float;
  q_perimeter : float;
  q_resources : float;
  q_relocation : float;
}

val default_weights : weights
(** Evaluation-section flavour: resources dominate, wire length second,
    relocation and perimeter small. *)

val wl_max : Device.Partition.t -> Device.Spec.t -> float
(** Normalizer [WLmax]: every net at the device diameter. *)

val perimeter_max : Device.Partition.t -> Device.Spec.t -> float

val resources_max : Device.Partition.t -> float
(** Total configuration frames of the device ([Rmax]). *)

val relocation_max : Device.Spec.t -> float
(** Eq. 15: sum of the soft-area weights ([RLmax]). *)
