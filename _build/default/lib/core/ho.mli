(** HO mode: sequence-pair restriction from a heuristic seed solution.

    [10]'s HO algorithm extracts the sequence-pair of a first feasible
    floorplan and constrains the MILP to placements with the same
    pairwise relative positions, shrinking the search space.  Per
    Section II.A, when relocation is a constraint the seed must also
    contain the free-compatible areas, so the sequence pair naturally
    extends to them; this module therefore derives a relation for every
    entity pair (regions and areas). *)

val relations :
  Device.Spec.t ->
  Device.Floorplan.t ->
  ((string * string) * Model.pair_relation) list
(** For each pair of entities in the seed, the geometric relation
    (horizontal split preferred, then vertical).  Entity names follow
    {!Model.entity_names} ("region" and "region/i").
    @raise Invalid_argument if the seed has overlapping entities or
    misses a region. *)

val seed_of_search :
  ?options:Search.Engine.options ->
  Device.Partition.t ->
  Device.Spec.t ->
  Device.Floorplan.t option
(** Convenience: obtain a seed floorplan (with hard free-compatible
    areas placed) from the combinatorial engine, limited to a quick
    first-solution search. *)
