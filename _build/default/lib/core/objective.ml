open Device

type weights = {
  q_wirelength : float;
  q_perimeter : float;
  q_resources : float;
  q_relocation : float;
}

let default_weights =
  { q_wirelength = 0.25; q_perimeter = 0.05; q_resources = 0.6; q_relocation = 0.1 }

let wl_max part (spec : Spec.t) =
  let diameter =
    float_of_int (Partition.width part + Partition.height part)
  in
  List.fold_left (fun acc (n : Spec.net) -> acc +. (n.Spec.weight *. diameter)) 0.
    spec.Spec.nets

let perimeter_max part (spec : Spec.t) =
  let per = 2. *. float_of_int (Partition.width part + Partition.height part) in
  float_of_int (List.length spec.Spec.regions) *. per

let resources_max part =
  let g = part.Partition.grid in
  Resource.demand_frames ~frames:(Grid.frames g) (Grid.total_tiles g)
  |> float_of_int

let relocation_max (spec : Spec.t) =
  List.fold_left
    (fun acc (rr : Spec.reloc_req) ->
      match rr.Spec.mode with
      | Spec.Soft w -> acc +. (w *. float_of_int rr.Spec.copies)
      | Spec.Hard -> acc)
    0. spec.Spec.relocs
