open Device

let entity_rects (spec : Spec.t) plan =
  let regions =
    List.map
      (fun (r : Spec.region) ->
        match Floorplan.rect_of plan r.Spec.r_name with
        | Some rect -> (r.Spec.r_name, rect)
        | None ->
          invalid_arg
            (Printf.sprintf "Ho.relations: seed misses region %s" r.Spec.r_name))
      spec.Spec.regions
  in
  let fcs =
    List.concat_map
      (fun (rr : Spec.reloc_req) ->
        List.filter (fun f -> f.Floorplan.fc_region = rr.Spec.target)
          plan.Floorplan.fc_areas
        |> List.mapi (fun i f ->
               (Printf.sprintf "%s/%d" rr.Spec.target (i + 1), f.Floorplan.fc_rect)))
      spec.Spec.relocs
  in
  regions @ fcs

let relations spec plan =
  let rects = entity_rects spec plan in
  let rec pairs = function
    | [] -> []
    | (na, ra) :: rest ->
      List.filter_map
        (fun (nb, rb) ->
          let rel =
            if Rect.x2 ra < rb.Rect.x then Some Model.Left_of
            else if Rect.x2 rb < ra.Rect.x then Some Model.Right_of
            else if Rect.y2 ra < rb.Rect.y then Some Model.Above
            else if Rect.y2 rb < ra.Rect.y then Some Model.Below
            else
              invalid_arg
                (Printf.sprintf "Ho.relations: %s and %s overlap in the seed" na
                   nb)
          in
          Option.map (fun r -> ((na, nb), r)) rel)
        rest
      @ pairs rest
  in
  pairs rects

let seed_of_search ?options part spec =
  let options =
    match options with
    | Some o -> o
    | None ->
      { Search.Engine.default_options with
        time_limit = Some 10.; optimize_wirelength = false }
  in
  (Search.Engine.solve ~options part spec).Search.Engine.plan
