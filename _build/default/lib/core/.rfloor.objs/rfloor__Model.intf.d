lib/core/model.mli: Device Milp Objective
