lib/core/objective.mli: Device
