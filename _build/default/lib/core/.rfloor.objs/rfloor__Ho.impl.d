lib/core/ho.ml: Device Floorplan List Model Option Printf Rect Search Spec
