lib/core/solver.ml: Device Floorplan Format Ho List Milp Model Objective Option Printf Search Spec
