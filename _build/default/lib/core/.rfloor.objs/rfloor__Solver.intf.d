lib/core/solver.mli: Device Format Objective
