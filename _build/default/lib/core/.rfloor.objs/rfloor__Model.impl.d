lib/core/model.ml: Array Device Float Floorplan Grid Hashtbl List Milp Objective Option Partition Printf Rect Resource Spec String
