lib/core/ho.mli: Device Model Search
