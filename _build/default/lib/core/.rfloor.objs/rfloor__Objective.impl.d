lib/core/objective.ml: Device Grid List Partition Resource Spec
