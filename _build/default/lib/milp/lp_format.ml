let fprintf = Format.fprintf

(* LP format restricts identifier characters; sanitize what we emit so
   names coming from problem descriptions (spaces, '#', ...) stay legal. *)
let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '[' || c = ']'
  in
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    if not (ok (Bytes.get b i)) then Bytes.set b i '_'
  done;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else
    match s.[0] with
    | '0' .. '9' | '.' -> "_" ^ s
    | _ -> s

let var_label lp v = Printf.sprintf "%s" (sanitize (Lp.var_name lp v))

let pp_coeff ppf ~first c name =
  let sign, mag = if c < 0. then ("-", -.c) else ((if first then "" else "+"), c) in
  if mag = 1. then fprintf ppf " %s %s" sign name
  else fprintf ppf " %s %.12g %s" sign mag name

let pp_terms ppf lp terms =
  match terms with
  | [] -> fprintf ppf " 0 %s" (var_label lp 0)
  | _ ->
    List.iteri
      (fun i (c, v) -> pp_coeff ppf ~first:(i = 0) c (var_label lp v))
      terms

let write ppf lp =
  fprintf ppf "\\ %s@." (Lp.name lp);
  (match Lp.objective_dir lp with
  | Lp.Minimize -> fprintf ppf "Minimize@."
  | Lp.Maximize -> fprintf ppf "Maximize@.");
  fprintf ppf " obj:";
  pp_terms ppf lp (Lp.objective_terms lp);
  (let c = Lp.objective_constant lp in
   if c <> 0. then
     if c < 0. then fprintf ppf " - %.12g CONST_ONE" (-.c)
     else fprintf ppf " + %.12g CONST_ONE" c);
  fprintf ppf "@.Subject To@.";
  Lp.iter_constrs lp (fun i terms sense rhs ->
      fprintf ppf " %s:" (sanitize (Lp.constr_name lp i));
      pp_terms ppf lp terms;
      let op = match sense with Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "=" in
      fprintf ppf " %s %.12g@." op rhs);
  if Lp.objective_constant lp <> 0. then fprintf ppf " fix_const: CONST_ONE = 1@.";
  fprintf ppf "Bounds@.";
  for v = 0 to Lp.num_vars lp - 1 do
    let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
    let name = var_label lp v in
    if Lp.var_kind lp v = Lp.Binary && lb = 0. && ub = 1. then ()
    else if lb = ub then fprintf ppf " %s = %.12g@." name lb
    else begin
      if lb = neg_infinity && ub = infinity then fprintf ppf " %s free@." name
      else begin
        if lb <> 0. then
          if lb = neg_infinity then fprintf ppf " -inf <= %s@." name
          else fprintf ppf " %.12g <= %s@." lb name;
        if ub <> infinity then fprintf ppf " %s <= %.12g@." name ub
      end
    end
  done;
  let generals, binaries =
    List.partition
      (fun v -> Lp.var_kind lp v = Lp.Integer)
      (Lp.integer_vars lp)
  in
  if generals <> [] then begin
    fprintf ppf "General@.";
    List.iter (fun v -> fprintf ppf " %s@." (var_label lp v)) generals
  end;
  if binaries <> [] then begin
    fprintf ppf "Binary@.";
    List.iter (fun v -> fprintf ppf " %s@." (var_label lp v)) binaries
  end;
  fprintf ppf "End@."

let to_string lp =
  let b = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer b in
  write ppf lp;
  Format.pp_print_flush ppf ();
  Buffer.contents b

let to_file path lp =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf lp;
      Format.pp_print_flush ppf ())

(* ------------------------------------------------------------------ *)
(* Parser for the subset we emit.                                      *)

type token = Word of string | Num of float | Op of string

let tokenize text =
  let toks = ref [] in
  let n = String.length text in
  let i = ref 0 in
  let in_comment = ref false in
  while !i < n do
    let c = text.[!i] in
    if !in_comment then begin
      if c = '\n' then in_comment := false;
      incr i
    end
    else
      match c with
      | '\\' -> in_comment := true; incr i
      | ' ' | '\t' | '\n' | '\r' -> incr i
      | '<' | '>' | '=' ->
        let j = if !i + 1 < n && text.[!i + 1] = '=' then !i + 2 else !i + 1 in
        let s = String.sub text !i (j - !i) in
        let s = match s with "<" -> "<=" | ">" -> ">=" | s -> s in
        toks := Op s :: !toks;
        i := j
      | '+' | '-' ->
        toks := Op (String.make 1 c) :: !toks;
        incr i
      | ':' -> toks := Op ":" :: !toks; incr i
      | '0' .. '9' | '.' ->
        let j = ref !i in
        while
          !j < n
          && (match text.[!j] with
             | '0' .. '9' | '.' | 'e' | 'E' -> true
             | '+' | '-' ->
               (* exponent sign *)
               !j > !i && (text.[!j - 1] = 'e' || text.[!j - 1] = 'E')
             | _ -> false)
        do
          incr j
        done;
        toks := Num (float_of_string (String.sub text !i (!j - !i))) :: !toks;
        i := !j
      | _ ->
        let j = ref !i in
        while
          !j < n
          &&
          match text.[!j] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '[' | ']' -> true
          | _ -> false
        do
          incr j
        done;
        if !j = !i then incr i (* skip unknown char *)
        else begin
          toks := Word (String.sub text !i (!j - !i)) :: !toks;
          i := !j
        end
  done;
  List.rev !toks

let lower s = String.lowercase_ascii s

let is_section = function
  | Word w -> (
    match lower w with
    | "minimize" | "maximize" | "min" | "max" | "subject" | "st" | "s.t." | "bounds"
    | "general" | "generals" | "gen" | "binary" | "binaries" | "bin" | "end" | "free" ->
      true
    | _ -> false)
  | _ -> false

exception Parse_error of string

let parse text =
  try
    let toks = ref (tokenize text) in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let next () =
      match !toks with
      | [] -> raise (Parse_error "unexpected end of input")
      | t :: rest ->
        toks := rest;
        t
    in
    let lp = Lp.create ~name:"parsed" () in
    let vars = Hashtbl.create 64 in
    let var name =
      match Hashtbl.find_opt vars name with
      | Some v -> v
      | None ->
        let v = Lp.add_var lp ~name ~lb:0. ~ub:infinity () in
        Hashtbl.replace vars name v;
        v
    in
    (* parse a linear expression: [+-] [num] word ... ; stops at an
       operator other than +/- or at a section keyword *)
    let parse_expr () =
      let terms = ref [] and constant = ref 0. in
      let continue_ = ref true in
      while !continue_ do
        match peek () with
        | Some (Op ("+" | "-")) | Some (Num _) | Some (Word _)
          when not (match peek () with Some t -> is_section t | None -> true) -> (
          let sign =
            match peek () with
            | Some (Op "+") -> ignore (next ()); 1.
            | Some (Op "-") -> ignore (next ()); -1.
            | _ -> 1.
          in
          let coeff, name =
            match next () with
            | Num c -> (
              match peek () with
              | Some (Word w) when not (is_section (Word w)) ->
                ignore (next ());
                (c, Some w)
              | _ -> (c, None))
            | Word w -> (1., Some w)
            | Op o -> raise (Parse_error ("unexpected operator " ^ o))
          in
          match name with
          | Some w -> terms := (sign *. coeff, var w) :: !terms
          | None -> constant := !constant +. (sign *. coeff))
        | _ -> continue_ := false
      done;
      (List.rev !terms, !constant)
    in
    let dir =
      match next () with
      | Word w when lower w = "minimize" || lower w = "min" -> Lp.Minimize
      | Word w when lower w = "maximize" || lower w = "max" -> Lp.Maximize
      | _ -> raise (Parse_error "expected Minimize/Maximize")
    in
    (* optional label *)
    let skip_label () =
      match !toks with
      | Word _ :: Op ":" :: rest -> toks := rest
      | _ -> ()
    in
    skip_label ();
    let obj_terms, obj_const = parse_expr () in
    (match next () with
    | Word w when lower w = "subject" -> (
      match next () with
      | Word w2 when lower w2 = "to" -> ()
      | _ -> raise (Parse_error "expected 'Subject To'"))
    | Word w when lower w = "st" || lower w = "s.t." -> ()
    | _ -> raise (Parse_error "expected 'Subject To'"));
    (* rows until Bounds/General/Binary/End *)
    let in_rows = ref true in
    let row_specs = ref [] in
    while !in_rows do
      match peek () with
      | Some (Word w)
        when List.mem (lower w)
               [ "bounds"; "general"; "generals"; "gen"; "binary"; "binaries"; "bin"; "end" ]
        ->
        in_rows := false
      | None -> in_rows := false
      | _ ->
        let name =
          match !toks with
          | Word w :: Op ":" :: rest ->
            toks := rest;
            Some w
          | _ -> None
        in
        let lhs, lconst = parse_expr () in
        let op =
          match next () with
          | Op (("<=" | ">=" | "=") as o) -> o
          | _ -> raise (Parse_error "expected <=, >= or = in row")
        in
        let rhs =
          let sign = match peek () with
            | Some (Op "-") -> ignore (next ()); -1.
            | Some (Op "+") -> ignore (next ()); 1.
            | _ -> 1.
          in
          match next () with
          | Num x -> sign *. x
          | _ -> raise (Parse_error "expected numeric rhs")
        in
        let sense =
          match op with "<=" -> Lp.Le | ">=" -> Lp.Ge | _ -> Lp.Eq
        in
        row_specs := (name, lhs, sense, rhs -. lconst) :: !row_specs
    done;
    List.iter
      (fun (name, lhs, sense, rhs) -> Lp.add_constr lp ?name lhs sense rhs)
      (List.rev !row_specs);
    (* remaining sections *)
    let finished = ref false in
    while not !finished do
      match peek () with
      | None -> finished := true
      | Some (Word w) when lower w = "end" ->
        ignore (next ());
        finished := true
      | Some (Word w) when lower w = "bounds" ->
        ignore (next ());
        let in_bounds = ref true in
        while !in_bounds do
          match peek () with
          | Some t when is_section t && (match t with Word w -> lower w <> "free" | _ -> true) ->
            in_bounds := false
          | None -> in_bounds := false
          | _ -> (
            (* forms: n <= x ; x <= n ; n <= x <= n ; x = n ; x free ; -inf <= x *)
            let read_num () =
              let sign = match peek () with
                | Some (Op "-") -> ignore (next ()); -1.
                | Some (Op "+") -> ignore (next ()); 1.
                | _ -> 1.
              in
              match next () with
              | Num x -> sign *. x
              | Word w when lower w = "inf" || lower w = "infinity" -> sign *. infinity
              | _ -> raise (Parse_error "expected number in bounds")
            in
            match peek () with
            | Some (Word w) when lower w <> "inf" && lower w <> "infinity" -> (
              ignore (next ());
              let v = var w in
              match peek () with
              | Some (Word f) when lower f = "free" ->
                ignore (next ());
                Lp.set_bounds lp v ~lb:neg_infinity ~ub:infinity
              | Some (Op "<=") ->
                ignore (next ());
                let u = read_num () in
                Lp.set_bounds lp v ~lb:(Lp.var_lb lp v) ~ub:u
              | Some (Op ">=") ->
                ignore (next ());
                let l = read_num () in
                Lp.set_bounds lp v ~lb:l ~ub:(Lp.var_ub lp v)
              | Some (Op "=") ->
                ignore (next ());
                let x = read_num () in
                Lp.set_bounds lp v ~lb:x ~ub:x
              | _ -> raise (Parse_error ("bad bound for " ^ w)))
            | _ -> (
              let l = read_num () in
              (match next () with
              | Op "<=" -> ()
              | _ -> raise (Parse_error "expected <= in bound"));
              match next () with
              | Word w -> (
                let v = var w in
                Lp.set_bounds lp v ~lb:l ~ub:(Lp.var_ub lp v);
                match peek () with
                | Some (Op "<=") ->
                  ignore (next ());
                  let u = read_num () in
                  Lp.set_bounds lp v ~lb:l ~ub:u
                | _ -> ())
              | _ -> raise (Parse_error "expected variable in bound")))
        done
      | Some (Word w)
        when List.mem (lower w) [ "general"; "generals"; "gen" ] ->
        ignore (next ());
        let in_sec = ref true in
        while !in_sec do
          match peek () with
          | Some (Word w) when is_section (Word w) -> in_sec := false
          | Some (Word w) ->
            ignore (next ());
            Lp.set_kind lp (var w) Lp.Integer
          | _ -> in_sec := false
        done
      | Some (Word w) when List.mem (lower w) [ "binary"; "binaries"; "bin" ] ->
        ignore (next ());
        let in_sec = ref true in
        while !in_sec do
          match peek () with
          | Some (Word w) when is_section (Word w) -> in_sec := false
          | Some (Word w) ->
            ignore (next ());
            let v = var w in
            Lp.set_kind lp v Lp.Binary;
            Lp.set_bounds lp v ~lb:(max 0. (Lp.var_lb lp v)) ~ub:(min 1. (Lp.var_ub lp v))
          | _ -> in_sec := false
        done
      | Some _ -> raise (Parse_error "unexpected token after rows")
    done;
    Lp.set_objective lp dir ~constant:obj_const obj_terms;
    Ok lp
  with
  | Parse_error msg -> Error msg
  | Failure msg -> Error msg

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse (really_input_string ic len))
