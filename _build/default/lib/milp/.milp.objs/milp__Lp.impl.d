lib/milp/lp.ml: Array Float Format Hashtbl List Printf
