lib/milp/mps.mli: Format Lp
