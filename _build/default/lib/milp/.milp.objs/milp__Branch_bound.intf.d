lib/milp/branch_bound.mli: Lp
