lib/milp/gomory.ml: Array Float Fun Hashtbl List Lp Printf Simplex
