lib/milp/presolve.ml: Float List Lp
