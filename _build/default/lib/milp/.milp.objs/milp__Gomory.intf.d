lib/milp/gomory.mli: Lp
