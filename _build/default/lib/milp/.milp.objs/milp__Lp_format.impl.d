lib/milp/lp_format.ml: Buffer Bytes Format Fun Hashtbl List Lp Printf String
