lib/milp/branch_bound.ml: Array Float Gomory List Lp Printf Simplex Sys
