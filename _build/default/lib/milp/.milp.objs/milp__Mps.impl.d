lib/milp/mps.ml: Array Buffer Format Fun List Lp Lp_format
