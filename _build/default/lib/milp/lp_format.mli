(** CPLEX-LP file format writer and (subset) parser.

    The writer emits models solvable by CPLEX, Gurobi, SCIP, HiGHS or
    lp_solve, so the floorplanning MILPs built by this repository can be
    handed to an external solver.  The parser accepts the subset the
    writer produces (objective, subject-to rows, bounds, general/binary
    sections) and is used for round-trip tests. *)

val sanitize : string -> string
(** Restricts a name to LP/MPS-legal identifier characters. *)

val write : Format.formatter -> Lp.t -> unit

val to_string : Lp.t -> string

val to_file : string -> Lp.t -> unit

val parse : string -> (Lp.t, string) result
(** Parses LP-format text.  Variables are created in first-appearance
    order.  Returns [Error msg] on malformed input. *)

val parse_file : string -> (Lp.t, string) result
