(** Gomory mixed-integer (GMI) cuts.

    Derived from an optimal simplex basis: for each basic integer
    variable with a fractional value, the tableau row yields a valid
    inequality that cuts off the current fractional vertex but no
    integer-feasible point.  Used by {!Branch_bound} at the root node
    ("branch and cut").  All cuts are returned over structural variables
    only (slacks are substituted out). *)

type cut = { terms : Lp.term list; rhs : float }
(** The inequality [terms >= rhs]. *)

val cuts :
  ?max_cuts:int ->
  Lp.t ->
  basis:int array ->
  at_upper:bool array ->
  values:float array ->
  cut list
(** [cuts lp ~basis ~at_upper ~values] derives GMI cuts from the state
    returned by {!Simplex.Core.solve_with_basis}.  Rows whose basic
    variable is continuous, integral-valued, artificial, or whose
    nonbasic support includes a free variable are skipped; numerically
    fragile rows are skipped too. *)

val add_root_cuts :
  ?rounds:int -> ?max_cuts_per_round:int -> Lp.t -> int
(** Iteratively strengthens [lp] in place: solve the relaxation, add
    GMI cuts, repeat (default 3 rounds, 16 cuts each).  Returns the
    number of cuts added.  Solutions of the original MILP are preserved
    (cuts are valid inequalities). *)
