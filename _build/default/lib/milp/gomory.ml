type cut = { terms : Lp.term list; rhs : float }

let frac x = x -. floor x

(* Dense inverse of the basis matrix (columns: structural sparse, slack
   and artificial unit vectors).  None if singular. *)
let invert_basis lp basis =
  let m = Lp.num_constrs lp and n = Lp.num_vars lp in
  let cols = Array.make n [] in
  Lp.iter_constrs lp (fun i terms _ _ ->
      List.iter (fun (c, v) -> cols.(v) <- (i, c) :: cols.(v)) terms);
  let a = Array.init m (fun _ -> Array.make m 0.) in
  for i = 0 to m - 1 do
    let j = basis.(i) in
    if j < n then List.iter (fun (r, c) -> a.(r).(i) <- c) cols.(j)
    else if j < n + m then a.(j - n).(i) <- 1.
    else a.(j - n - m).(i) <- 1.
  done;
  let inv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1. else 0.)) in
  let ok = ref true in
  for col = 0 to m - 1 do
    if !ok then begin
      let piv = ref col in
      for i = col + 1 to m - 1 do
        if abs_float a.(i).(col) > abs_float a.(!piv).(col) then piv := i
      done;
      if abs_float a.(!piv).(col) < 1e-10 then ok := false
      else begin
        if !piv <> col then begin
          let t = a.(col) in a.(col) <- a.(!piv); a.(!piv) <- t;
          let t = inv.(col) in inv.(col) <- inv.(!piv); inv.(!piv) <- t
        end;
        let d = a.(col).(col) in
        for k = 0 to m - 1 do
          a.(col).(k) <- a.(col).(k) /. d;
          inv.(col).(k) <- inv.(col).(k) /. d
        done;
        for i = 0 to m - 1 do
          if i <> col then begin
            let f = a.(i).(col) in
            if f <> 0. then
              for k = 0 to m - 1 do
                a.(i).(k) <- a.(i).(k) -. (f *. a.(col).(k));
                inv.(i).(k) <- inv.(i).(k) -. (f *. inv.(col).(k))
              done
          end
        done
      end
    end
  done;
  if !ok then Some inv else None

let cuts ?(max_cuts = 16) lp ~basis ~at_upper ~values =
  let m = Lp.num_constrs lp and n = Lp.num_vars lp in
  let is_int = Array.make n false in
  List.iter (fun v -> is_int.(v) <- true) (Lp.integer_vars lp);
  let cols = Array.make n [] in
  let rhs_of = Array.make m 0. in
  Lp.iter_constrs lp (fun i terms _ rhs ->
      rhs_of.(i) <- rhs;
      List.iter (fun (c, v) -> cols.(v) <- (i, c) :: cols.(v)) terms);
  match invert_basis lp basis with
  | None -> []
  | Some binv ->
    let in_basis = Array.make (n + (2 * m)) false in
    Array.iter (fun j -> in_basis.(j) <- true) basis;
    let out = ref [] and count = ref 0 in
    (* nonbasic structural + slack columns *)
    let nonbasic =
      List.filter (fun j -> not in_basis.(j)) (List.init (n + m) Fun.id)
    in
    let col_dot y j =
      if j < n then
        List.fold_left (fun acc (r, c) -> acc +. (y.(r) *. c)) 0. cols.(j)
      else y.(j - n)
    in
    let bounds j =
      if j < n then (Lp.var_lb lp j, Lp.var_ub lp j)
      else
        match Lp.constr_sense lp (j - n) with
        | Lp.Le -> (0., infinity)
        | Lp.Ge -> (neg_infinity, 0.)
        | Lp.Eq -> (0., 0.)
    in
    for i = 0 to m - 1 do
      let jb = basis.(i) in
      if !count < max_cuts && jb < n && is_int.(jb) then begin
        let v = values.(jb) in
        let f0 = frac v in
        if f0 > 1e-4 && f0 < 1. -. 1e-4 then begin
          let y = binv.(i) in
          (* gamma per nonbasic variable; accumulate the cut in t-space
             then substitute the bound shifts and slacks back *)
          let usable = ref true in
          let gammas =
            List.filter_map
              (fun j ->
                if not !usable then None
                else begin
                  let lb, ub = bounds j in
                  if lb = ub then None (* fixed: t_j = 0 *)
                  else begin
                    let abar = col_dot y j in
                    if abs_float abar < 1e-10 then None
                    else if abs_float abar > 1e7 then begin
                      usable := false;
                      None
                    end
                    else begin
                      let up = at_upper.(j) in
                      if (up && not (Float.is_finite ub))
                         || ((not up) && not (Float.is_finite lb))
                      then begin
                        (* nonbasic not at a finite bound: skip the row *)
                        usable := false;
                        None
                      end
                      else begin
                        let a_sh = if up then -.abar else abar in
                        let integral = j < n && is_int.(j) in
                        let gamma =
                          if integral then begin
                            let fj = frac a_sh in
                            if fj <= f0 then fj else f0 *. (1. -. fj) /. (1. -. f0)
                          end
                          else if a_sh >= 0. then a_sh
                          else f0 *. -.a_sh /. (1. -. f0)
                        in
                        if gamma < 1e-11 then None else Some (j, up, gamma)
                      end
                    end
                  end
                end)
              nonbasic
          in
          if !usable && gammas <> [] then begin
            (* sum gamma_j t_j >= f0; expand t_j and slacks *)
            let terms = Hashtbl.create 16 in
            let add v c =
              Hashtbl.replace terms v (c +. try Hashtbl.find terms v with Not_found -> 0.)
            in
            let rhs = ref f0 in
            List.iter
              (fun (j, up, gamma) ->
                let lb, ub = bounds j in
                let coef, const =
                  (* t = x - lb  or  t = ub - x *)
                  if up then (-.gamma, gamma *. ub) else (gamma, -.(gamma *. lb))
                in
                (* gamma * t = coef * x_j + const *)
                rhs := !rhs -. const;
                if j < n then add j coef
                else begin
                  (* slack: s = b - row . x *)
                  let row_i = j - n in
                  rhs := !rhs -. (coef *. rhs_of.(row_i));
                  List.iter
                    (fun (c, v) -> add v (-.coef *. c))
                    (Lp.constr_terms lp row_i)
                end)
              gammas;
            let term_list =
              Hashtbl.fold
                (fun v c acc -> if abs_float c > 1e-11 then (c, v) :: acc else acc)
                terms []
            in
            if term_list <> [] then begin
              incr count;
              out := { terms = term_list; rhs = !rhs } :: !out
            end
          end
        end
      end
    done;
    List.rev !out

let add_root_cuts ?(rounds = 3) ?(max_cuts_per_round = 16) lp =
  let added = ref 0 in
  let continue_ = ref true in
  let round = ref 0 in
  while !continue_ && !round < rounds do
    incr round;
    let core = Simplex.Core.of_lp lp in
    match Simplex.Core.solve_with_basis core with
    | { Simplex.status = Simplex.Optimal; _ }, Some (basis, at_upper, values)
      when not (Lp.is_integral lp values) ->
      let cs = cuts ~max_cuts:max_cuts_per_round lp ~basis ~at_upper ~values in
      if cs = [] then continue_ := false
      else
        List.iter
          (fun { terms; rhs } ->
            incr added;
            Lp.add_constr lp ~name:(Printf.sprintf "gmi%d" !added) terms Lp.Ge rhs)
          cs
    | _ -> continue_ := false
  done;
  !added
