(** Fixed-format-free MPS writer (modern free MPS accepted by CPLEX,
    Gurobi, HiGHS, SCIP).  Complements {!Lp_format} for toolchains that
    prefer MPS. *)

val write : Format.formatter -> Lp.t -> unit
val to_string : Lp.t -> string
val to_file : string -> Lp.t -> unit
