let fprintf = Format.fprintf

let sanitize = Lp_format.sanitize

let write ppf lp =
  let n = Lp.num_vars lp in
  let vname = Array.init n (fun v -> sanitize (Lp.var_name lp v)) in
  let rname = Array.init (Lp.num_constrs lp) (fun i -> sanitize (Lp.constr_name lp i)) in
  fprintf ppf "NAME %s@." (sanitize (Lp.name lp));
  (match Lp.objective_dir lp with
  | Lp.Minimize -> fprintf ppf "OBJSENSE@. MIN@."
  | Lp.Maximize -> fprintf ppf "OBJSENSE@. MAX@.");
  fprintf ppf "ROWS@. N obj@.";
  Lp.iter_constrs lp (fun i _ sense _ ->
      let tag = match sense with Lp.Le -> "L" | Lp.Ge -> "G" | Lp.Eq -> "E" in
      fprintf ppf " %s %s@." tag rname.(i));
  fprintf ppf "COLUMNS@.";
  (* column-wise: gather each variable's rows *)
  let cols = Array.make n [] in
  Lp.iter_constrs lp (fun i terms _ _ ->
      List.iter (fun (c, v) -> cols.(v) <- (rname.(i), c) :: cols.(v)) terms);
  let integer_marker = ref false in
  let set_marker ppf want =
    if want && not !integer_marker then begin
      fprintf ppf " MARKER 'MARKER' 'INTORG'@.";
      integer_marker := true
    end
    else if (not want) && !integer_marker then begin
      fprintf ppf " MARKER 'MARKER' 'INTEND'@.";
      integer_marker := false
    end
  in
  for v = 0 to n - 1 do
    let is_int = Lp.var_kind lp v <> Lp.Continuous in
    set_marker ppf is_int;
    let c = Lp.objective_coeff lp v in
    if c <> 0. then fprintf ppf " %s obj %.12g@." vname.(v) c;
    List.iter
      (fun (rn, coef) -> fprintf ppf " %s %s %.12g@." vname.(v) rn coef)
      (List.rev cols.(v))
  done;
  set_marker ppf false;
  fprintf ppf "RHS@.";
  Lp.iter_constrs lp (fun i _ _ rhs ->
      if rhs <> 0. then fprintf ppf " RHS %s %.12g@." rname.(i) rhs);
  if Lp.objective_constant lp <> 0. then
    (* MPS convention: the RHS of the objective row is the negated constant *)
    fprintf ppf " RHS obj %.12g@." (-.Lp.objective_constant lp);
  fprintf ppf "BOUNDS@.";
  for v = 0 to n - 1 do
    let lb = Lp.var_lb lp v and ub = Lp.var_ub lp v in
    if lb = ub then fprintf ppf " FX BND %s %.12g@." vname.(v) lb
    else begin
      if lb = neg_infinity && ub = infinity then fprintf ppf " FR BND %s@." vname.(v)
      else begin
        if lb = neg_infinity then fprintf ppf " MI BND %s@." vname.(v)
        else if lb <> 0. then fprintf ppf " LO BND %s %.12g@." vname.(v) lb;
        if ub <> infinity then fprintf ppf " UP BND %s %.12g@." vname.(v) ub
      end
    end
  done;
  fprintf ppf "ENDATA@."

let to_string lp =
  let b = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer b in
  write ppf lp;
  Format.pp_print_flush ppf ();
  Buffer.contents b

let to_file path lp =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf lp;
      Format.pp_print_flush ppf ())
