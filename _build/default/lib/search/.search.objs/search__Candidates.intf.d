lib/search/candidates.mli: Device
