lib/search/candidates.ml: Array Device Grid List Partition Rect Resource
