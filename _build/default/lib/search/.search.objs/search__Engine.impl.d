lib/search/engine.ml: Array Candidates Compat Device Floorplan Grid List Option Partition Printf Rect Resource Spec Sys
