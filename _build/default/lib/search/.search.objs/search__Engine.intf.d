lib/search/engine.mli: Device
