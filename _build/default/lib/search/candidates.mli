(** Candidate rectangle enumeration for the combinatorial placer.

    For a region with a given tile demand on a columnar device, every
    rectangle that covers the demand and avoids forbidden areas is a
    candidate.  Candidates are produced sorted by increasing wasted
    frames, which lets the branch-and-bound search find cheap incumbents
    first and prune by waste bounds. *)

type candidate = { rect : Device.Rect.t; waste : int }

val enumerate : Device.Partition.t -> Device.Resource.demand -> candidate list
(** All candidate rectangles for the demand, waste-ascending.  Empty if
    the region cannot be placed at all. *)

val min_waste : Device.Partition.t -> Device.Resource.demand -> int option
(** Waste of the cheapest candidate, [None] if unplaceable. *)

val shapes : Device.Partition.t -> Device.Resource.demand -> (int * int * int) list
(** Distinct [(x, w, h)] horizontal windows (before vertical placement)
    that can cover the demand, with minimal height per window.  Used by
    heuristics. *)
