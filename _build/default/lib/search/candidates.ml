open Device

type candidate = { rect : Rect.t; waste : int }

(* Per-column kind prefix sums: cols.(k_idx).(x) = number of columns of
   kind k among columns 1..x. *)
let kind_index = function
  | Resource.Clb -> 0
  | Resource.Bram -> 1
  | Resource.Dsp -> 2
  | Resource.Io -> 3

let prefix_counts part =
  let w = Partition.width part in
  let pref = Array.make_matrix 4 (w + 1) 0 in
  for x = 1 to w do
    let k = kind_index (Partition.column_type part x).Resource.kind in
    for ki = 0 to 3 do
      pref.(ki).(x) <- pref.(ki).(x - 1) + if ki = k then 1 else 0
    done
  done;
  pref

let window_kind_counts pref x w =
  Array.init 4 (fun ki -> pref.(ki).(x + w - 1) - pref.(ki).(x - 1))

let demand_by_index demand =
  let d = Array.make 4 0 in
  List.iter
    (fun (k, n) -> d.(kind_index k) <- d.(kind_index k) + n)
    demand;
  d

(* Minimal height such that h * cols(k) >= demand(k) for all kinds;
   None if some demanded kind has no column in the window. *)
let min_height_for d counts =
  let h = ref 1 and ok = ref true in
  for ki = 0 to 3 do
    if d.(ki) > 0 then
      if counts.(ki) = 0 then ok := false
      else h := max !h ((d.(ki) + counts.(ki) - 1) / counts.(ki))
  done;
  if !ok then Some !h else None

let frames_by_index part =
  let frames = Grid.frames part.Partition.grid in
  [|
    frames Resource.Clb; frames Resource.Bram; frames Resource.Dsp;
    frames Resource.Io;
  |]

let waste_of part_frames d counts h =
  let acc = ref 0 in
  for ki = 0 to 3 do
    acc := !acc + (part_frames.(ki) * ((h * counts.(ki)) - d.(ki)))
  done;
  !acc

let enumerate part demand =
  let width = Partition.width part and height = Partition.height part in
  let pref = prefix_counts part in
  let d = demand_by_index demand in
  let fr = frames_by_index part in
  let out = ref [] in
  for x = 1 to width do
    for w = 1 to width - x + 1 do
      let counts = window_kind_counts pref x w in
      match min_height_for d counts with
      | None -> ()
      | Some hmin ->
        for h = hmin to height do
          let waste = waste_of fr d counts h in
          for y = 1 to height - h + 1 do
            let rect = Rect.make ~x ~y ~w ~h in
            if not (Grid.rect_hits_forbidden part.Partition.grid rect) then
              out := { rect; waste } :: !out
          done
        done
    done
  done;
  List.sort
    (fun a b ->
      match compare a.waste b.waste with 0 -> Rect.compare a.rect b.rect | c -> c)
    !out

let min_waste part demand =
  match enumerate part demand with [] -> None | c :: _ -> Some c.waste

let shapes part demand =
  let width = Partition.width part and height = Partition.height part in
  let pref = prefix_counts part in
  let d = demand_by_index demand in
  let out = ref [] in
  for x = width downto 1 do
    for w = width - x + 1 downto 1 do
      let counts = window_kind_counts pref x w in
      match min_height_for d counts with
      | Some hmin when hmin <= height -> out := (x, w, hmin) :: !out
      | Some _ | None -> ()
    done
  done;
  !out
