open Device

let matched_filter = "Matched Filter"
let carrier_recovery = "Carrier Recovery"
let demodulator = "Demodulator"
let signal_decoder = "Signal Decoder"
let video_decoder = "Video Decoder"

let module_names =
  [ matched_filter; carrier_recovery; demodulator; signal_decoder; video_decoder ]

let relocatable = [ carrier_recovery; demodulator; signal_decoder ]

(* Table I resource requirements, in tiles *)
let requirements =
  [
    (matched_filter, 25, 0, 5);
    (carrier_recovery, 7, 0, 1);
    (demodulator, 5, 2, 0);
    (signal_decoder, 12, 1, 0);
    (video_decoder, 55, 2, 5);
  ]

let demand_of (c, b, d) =
  List.filter
    (fun (_, n) -> n > 0)
    [ (Resource.Clb, c); (Resource.Bram, b); (Resource.Dsp, d) ]

let regions =
  List.map
    (fun (name, c, b, d) ->
      { Spec.r_name = name; demand = demand_of (c, b, d) })
    requirements

let bus_nets = Spec.chain_nets ~weight:64. module_names

let design = Spec.make ~nets:bus_nets ~name:"SDR" regions

let with_copies ?(mode = Spec.Hard) n =
  let relocs =
    List.map (fun r -> { Spec.target = r; copies = n; mode }) relocatable
  in
  let name = Printf.sprintf "SDR%d" (n + 0) in
  Spec.make ~nets:bus_nets ~relocs ~name regions

let sdr2 = with_copies 2
let sdr3 = with_copies 3

let feasibility_variant region =
  Spec.make ~nets:bus_nets
    ~relocs:[ { Spec.target = region; copies = 1; mode = Spec.Hard } ]
    ~name:(Printf.sprintf "SDR+1fc(%s)" region)
    regions

let table1 ~frames =
  List.map
    (fun (name, c, b, d) ->
      let fr = Resource.demand_frames ~frames (demand_of (c, b, d)) in
      (name, c, b, d, fr))
    requirements
