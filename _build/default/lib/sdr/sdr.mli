(** The software-defined-radio case study of Section VI.

    Five reconfigurable regions (one per module of the SDR pipeline of
    Vipin-Fahmy), connected in sequential order by a 64-bit bus, with
    the Table I resource requirements.  [sdr2]/[sdr3] request 2/3
    free-compatible areas for each relocatable region (carrier recovery,
    demodulator, signal decoder). *)

val matched_filter : string
val carrier_recovery : string
val demodulator : string
val signal_decoder : string
val video_decoder : string

val module_names : string list
(** Pipeline order. *)

val relocatable : string list
(** The regions found relocatable by the paper's feasibility analysis. *)

val design : Device.Spec.t
(** The base SDR design (Table I), no relocation requests. *)

val sdr2 : Device.Spec.t
(** 2 free-compatible areas per relocatable region, as a constraint. *)

val sdr3 : Device.Spec.t
(** 3 free-compatible areas per relocatable region, as a constraint. *)

val with_copies : ?mode:Device.Spec.reloc_mode -> int -> Device.Spec.t
(** [with_copies n] requests [n] areas per relocatable region. *)

val feasibility_variant : string -> Device.Spec.t
(** The paper's feasibility test: the full design plus one hard
    free-compatible area for the named region only. *)

val table1 :
  frames:(Device.Resource.kind -> int) ->
  (string * int * int * int * int) list
(** Rows of Table I: (region, CLB tiles, BRAM tiles, DSP tiles,
    frames). *)
