(** Configuration frames: the atomic units of (re)configuration data.

    A frame is addressed by its column, clock-region row and minor
    index within the tile; tiles of kind CLB/BRAM/DSP hold 36/30/28
    frames (Section VI).  Frame payloads are fixed-size word arrays. *)

type address = { column : int; region_row : int; minor : int }
(** 1-based column and clock-region row, 0-based minor index. *)

val words_per_frame : int
(** Payload words per frame (41, as on Virtex-5). *)

val pack_address : address -> int32
(** Dense packing: column in bits 16.., row in 8..15, minor in 0..7.
    @raise Invalid_argument on out-of-range fields. *)

val unpack_address : int32 -> address

type t = { addr : address; data : int32 array }

val compare_address : address -> address -> int
val equal : t -> t -> bool
val pp_address : Format.formatter -> address -> unit
