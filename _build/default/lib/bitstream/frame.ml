type address = { column : int; region_row : int; minor : int }

let words_per_frame = 41

let pack_address { column; region_row; minor } =
  if column < 1 || column > 0xFFFF then invalid_arg "Frame.pack_address: column";
  if region_row < 1 || region_row > 0xFF then invalid_arg "Frame.pack_address: row";
  if minor < 0 || minor > 0xFF then invalid_arg "Frame.pack_address: minor";
  Int32.logor
    (Int32.shift_left (Int32.of_int column) 16)
    (Int32.logor (Int32.shift_left (Int32.of_int region_row) 8) (Int32.of_int minor))

let unpack_address w =
  {
    column = Int32.to_int (Int32.shift_right_logical w 16) land 0xFFFF;
    region_row = Int32.to_int (Int32.shift_right_logical w 8) land 0xFF;
    minor = Int32.to_int w land 0xFF;
  }

type t = { addr : address; data : int32 array }

let compare_address a b = compare (a.column, a.region_row, a.minor) (b.column, b.region_row, b.minor)

let equal a b = compare_address a.addr b.addr = 0 && a.data = b.data

let pp_address ppf a =
  Format.fprintf ppf "col=%d row=%d minor=%d" a.column a.region_row a.minor
