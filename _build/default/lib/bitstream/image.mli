(** Partial bitstream images: an ordered sequence of addressed frames
    protected by a CRC, with a simple binary wire format.

    [synthesize] produces the partial bitstream of a placed module: one
    frame per (covered tile, minor index).  Payload words depend only on
    the tile {e type}, the minor index and the module's seed — never on
    the absolute position — modelling Definition .1's requirement that
    tiles of one type carry identical configuration data, which is what
    makes relocation by pure address rewriting possible. *)

type t = { device : string; frames : Frame.t list }

val synthesize :
  seed:int -> Device.Partition.t -> Device.Rect.t -> t
(** @raise Invalid_argument if the rectangle leaves the device. *)

val frame_count : t -> int

val payload_equal : t -> t -> bool
(** Same frame payloads in order, addresses ignored. *)

val equal : t -> t -> bool

val serialize : t -> bytes
(** Wire format: magic, device name, frame count; per frame the packed
    address and payload words; trailing CRC-32 of everything before. *)

val parse : bytes -> (t, string) result
(** Rejects bad magic, truncation and CRC mismatches. *)

val crc : t -> int32
(** CRC of the serialized image (what a loader would check). *)
