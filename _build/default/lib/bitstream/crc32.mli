(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    The configuration interface of Xilinx devices protects bitstreams
    with a CRC; a relocation filter must recompute it after rewriting
    frame addresses (Section I, refs. [2]-[5]). *)

val update : int32 -> bytes -> int -> int -> int32
(** [update crc buf off len] folds a buffer slice into a running CRC
    (pass [0xFFFFFFFFl]-complemented state transparently: this takes
    and returns the {e presentation} value, as {!digest} does). *)

val digest : bytes -> int32
val digest_string : string -> int32
