(** REPLICA / BiRF-style bitstream relocation filter (refs. [2]-[5]).

    Relocation moves a module's configuration data from a source area
    to a compatible target area by rewriting the frame addresses and
    recomputing the CRC — the payload is untouched.  The filter refuses
    incompatible targets (Definition .1): that is exactly the situation
    the paper's floorplanner prevents by reserving free-compatible
    areas. *)

type error =
  | Incompatible of string  (** target area fails Definition .1 *)
  | Address_outside_source of Frame.address
  | Wrong_device of string

val pp_error : Format.formatter -> error -> unit

val relocate :
  Device.Partition.t ->
  src:Device.Rect.t ->
  dst:Device.Rect.t ->
  Image.t ->
  (Image.t, error) result
(** [relocate part ~src ~dst img] rewrites every frame address by the
    column/row displacement from [src] to [dst].  Fails if [dst] is not
    compatible with [src], if the image names a different device, or if
    a frame lies outside [src]. *)

val relocate_serialized :
  Device.Partition.t ->
  src:Device.Rect.t ->
  dst:Device.Rect.t ->
  bytes ->
  (bytes, string) result
(** End-to-end filter on the wire format: parse (checking the CRC),
    relocate, re-serialize (recomputing the CRC) — the software
    equivalent of the BiRF hardware filter. *)
