lib/bitstream/frame.mli: Format
