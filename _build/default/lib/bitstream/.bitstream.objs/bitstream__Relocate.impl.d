lib/bitstream/relocate.ml: Compat Device Format Frame Grid Image List Partition Printf Rect
