lib/bitstream/relocate.mli: Device Format Frame Image
