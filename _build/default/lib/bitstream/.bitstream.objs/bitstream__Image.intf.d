lib/bitstream/image.mli: Device Frame
