lib/bitstream/image.ml: Array Buffer Bytes Char Crc32 Device Frame Grid Int32 List Partition Rect Resource String
