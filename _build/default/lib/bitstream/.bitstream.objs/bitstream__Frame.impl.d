lib/bitstream/frame.ml: Format Int32
