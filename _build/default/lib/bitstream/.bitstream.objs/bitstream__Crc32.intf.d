lib/bitstream/crc32.mli:
