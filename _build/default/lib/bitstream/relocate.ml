open Device

type error =
  | Incompatible of string
  | Address_outside_source of Frame.address
  | Wrong_device of string

let pp_error ppf = function
  | Incompatible msg -> Format.fprintf ppf "incompatible target area: %s" msg
  | Address_outside_source a ->
    Format.fprintf ppf "frame %a outside the source area" Frame.pp_address a
  | Wrong_device d -> Format.fprintf ppf "image is for device %s" d

let relocate part ~src ~dst (img : Image.t) =
  if img.Image.device <> Grid.name part.Partition.grid then
    Error (Wrong_device img.Image.device)
  else if not (Compat.compatible part src dst) then
    Error
      (Incompatible
         (Printf.sprintf "%s -> %s" (Rect.to_string src) (Rect.to_string dst)))
  else begin
    let dx = dst.Rect.x - src.Rect.x and dy = dst.Rect.y - src.Rect.y in
    let exception Bad of Frame.address in
    try
      let frames =
        List.map
          (fun (f : Frame.t) ->
            let a = f.Frame.addr in
            if not (Rect.contains_point src a.Frame.column a.Frame.region_row)
            then raise (Bad a);
            {
              f with
              Frame.addr =
                {
                  a with
                  Frame.column = a.Frame.column + dx;
                  region_row = a.Frame.region_row + dy;
                };
            })
          img.Image.frames
      in
      Ok { img with Image.frames }
    with Bad a -> Error (Address_outside_source a)
  end

let relocate_serialized part ~src ~dst bytes_in =
  match Image.parse bytes_in with
  | Error e -> Error e
  | Ok img -> (
    match relocate part ~src ~dst img with
    | Error e -> Error (Format.asprintf "%a" pp_error e)
    | Ok img' -> Ok (Image.serialize img'))
