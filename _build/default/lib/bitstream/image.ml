open Device

type t = { device : string; frames : Frame.t list }

(* Small deterministic PRNG (xorshift) so payloads are reproducible and
   position-independent. *)
let mix seed a b c =
  let x = ref (seed lxor (a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE3D)) in
  x := !x lxor (!x lsl 13);
  x := !x lxor (!x lsr 17);
  x := !x lxor (!x lsl 5);
  Int32.of_int (!x land 0xFFFFFFFF)

let minors_of_kind part kind =
  Grid.frames part.Partition.grid kind

let synthesize ~seed part rect =
  if
    not
      (Rect.within ~width:(Partition.width part) ~height:(Partition.height part)
         rect)
  then invalid_arg "Image.synthesize: rectangle outside device";
  let frames = ref [] in
  for col = rect.Rect.x to Rect.x2 rect do
    let ty = Partition.column_type part col in
    let minors = minors_of_kind part ty.Resource.kind in
    for row = rect.Rect.y to Rect.y2 rect do
      for minor = 0 to minors - 1 do
        let data =
          Array.init Frame.words_per_frame (fun w ->
              (* depends on tile type + relative column + minor + word,
                 never on the absolute coordinates *)
              let kind_code =
                match ty.Resource.kind with
                | Resource.Clb -> 0
                | Resource.Bram -> 1
                | Resource.Dsp -> 2
                | Resource.Io -> 3
              in
              mix seed
                ((kind_code * 97)
                + (ty.Resource.variant * 31)
                + (col - rect.Rect.x))
                ((minor * 131) + (row - rect.Rect.y))
                w)
        in
        frames :=
          { Frame.addr = { Frame.column = col; region_row = row; minor }; data }
          :: !frames
      done
    done
  done;
  { device = Grid.name part.Partition.grid; frames = List.rev !frames }

let frame_count t = List.length t.frames

let payload_equal a b =
  List.length a.frames = List.length b.frames
  && List.for_all2 (fun (x : Frame.t) (y : Frame.t) -> x.Frame.data = y.Frame.data)
       a.frames b.frames

let equal a b =
  a.device = b.device
  && List.length a.frames = List.length b.frames
  && List.for_all2 Frame.equal a.frames b.frames

let magic = 0x52464250l (* "RFBP" *)

let put_i32 buf v =
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF));
  Buffer.add_char buf (Char.chr (Int32.to_int v land 0xFF))

let serialize_body t =
  let buf = Buffer.create 4096 in
  put_i32 buf magic;
  put_i32 buf (Int32.of_int (String.length t.device));
  Buffer.add_string buf t.device;
  put_i32 buf (Int32.of_int (List.length t.frames));
  List.iter
    (fun (f : Frame.t) ->
      put_i32 buf (Frame.pack_address f.Frame.addr);
      Array.iter (fun w -> put_i32 buf w) f.Frame.data)
    t.frames;
  buf

let serialize t =
  let buf = serialize_body t in
  let body = Buffer.to_bytes buf in
  let crc = Crc32.digest body in
  put_i32 buf crc;
  Buffer.to_bytes buf

let crc t = Crc32.digest (Buffer.to_bytes (serialize_body t))

let get_i32 b off =
  let byte i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  Int32.logor
    (Int32.shift_left (byte 0) 24)
    (Int32.logor
       (Int32.shift_left (byte 1) 16)
       (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))

let parse b =
  let len = Bytes.length b in
  if len < 16 then Error "truncated image"
  else if get_i32 b 0 <> magic then Error "bad magic"
  else begin
    let stored_crc = get_i32 b (len - 4) in
    let computed = Crc32.update 0l b 0 (len - 4) in
    if stored_crc <> computed then Error "CRC mismatch"
    else begin
      try
        let name_len = Int32.to_int (get_i32 b 4) in
        let device = Bytes.sub_string b 8 name_len in
        let off = 8 + name_len in
        let nframes = Int32.to_int (get_i32 b off) in
        let off = ref (off + 4) in
        let frames = ref [] in
        for _ = 1 to nframes do
          let addr = Frame.unpack_address (get_i32 b !off) in
          off := !off + 4;
          let data =
            Array.init Frame.words_per_frame (fun i -> get_i32 b (!off + (4 * i)))
          in
          off := !off + (4 * Frame.words_per_frame);
          frames := { Frame.addr; data } :: !frames
        done;
        if !off <> len - 4 then Error "trailing bytes"
        else Ok { device; frames = List.rev !frames }
      with Invalid_argument _ -> Error "truncated image"
    end
  end
