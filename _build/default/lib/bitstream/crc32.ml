let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc buf off len =
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let digest buf = update 0l buf 0 (Bytes.length buf)
let digest_string s = digest (Bytes.of_string s)
