lib/runtime/reconfig.mli: Device
