lib/runtime/reconfig.ml: Compat Device Floorplan Grid Hashtbl List Partition Printf Rect Resource Spec
