(** Run-time reconfiguration simulator.

    Models the benefit the paper's introduction claims for bitstream
    relocation: with free-compatible areas reserved by the
    floorplanner, the next mode of a module can be {e prefetched} into a
    compatible free area through the configuration port while the
    current mode keeps running, hiding (re)configuration latency; and a
    single bitstream per mode suffices for every compatible location
    (design re-use), instead of one bitstream per (mode, location).

    The simulator is a small discrete-event model: one configuration
    port (ICAP-like, fixed bandwidth), mode-switch requests over time,
    and two policies to compare. *)

type config = {
  words_per_frame : int;  (** payload words per configuration frame *)
  port_words_per_us : float;  (** configuration port bandwidth *)
  swap_overhead_us : float;
      (** handover time when activating a prefetched area *)
}

val default_config : config
(** 41-word frames through a 400 MB/s-class 32-bit port (100 words/us),
    1 us handover. *)

type policy =
  | Reload_in_place
      (** no relocation: every switch rewrites the region's own area and
          stalls the module for the whole write *)
  | Relocate_prefetch
      (** load the new mode into a reserved free-compatible area, then
          swap; the module only stalls for the handover *)

type request = { at : float; r_region : string; r_mode : string }
(** "switch [r_region] to [r_mode]" issued at time [at] (microseconds). *)

type event = {
  e_request : request;
  e_port_start : float;  (** when the port begins writing *)
  e_active : float;  (** when the new mode starts executing *)
  e_downtime : float;  (** time the module was stalled *)
  e_area : Device.Rect.t;  (** area the mode was written into *)
  e_relocated : bool;  (** used a free-compatible area *)
}

type stats = {
  switches : int;
  relocations : int;
  total_downtime : float;
  worst_downtime : float;
  port_busy : float;
  makespan : float;
}

val frames_of_area : Device.Partition.t -> Device.Rect.t -> int
(** Configuration frames of an area (what a full write costs). *)

val write_time : config -> frames:int -> float

val simulate :
  ?config:config ->
  Device.Partition.t ->
  Device.Spec.t ->
  Device.Floorplan.t ->
  policy ->
  request list ->
  (event list * stats, string) result
(** Replays the requests (sorted by time) against the floorplan.
    [Error] if a request names an unplaced region.  Under
    [Relocate_prefetch], regions without reserved areas fall back to
    in-place reloads; after a swap the previous active area joins the
    region's free pool (it is compatible by symmetry). *)

val stored_bitstreams :
  Device.Partition.t ->
  Device.Floorplan.t ->
  modes_per_region:(string * int) list ->
  relocatable:bool ->
  int
(** Design re-use metric: bitstream files that must be generated and
    stored.  With a relocation filter ([relocatable = true]) one per
    mode; without, one per mode per distinct area the region may occupy
    (its own placement plus every reserved free-compatible area). *)
