open Device

type config = {
  words_per_frame : int;
  port_words_per_us : float;
  swap_overhead_us : float;
}

let default_config =
  { words_per_frame = 41; port_words_per_us = 100.; swap_overhead_us = 1. }

type policy = Reload_in_place | Relocate_prefetch

type request = { at : float; r_region : string; r_mode : string }

type event = {
  e_request : request;
  e_port_start : float;
  e_active : float;
  e_downtime : float;
  e_area : Rect.t;
  e_relocated : bool;
}

type stats = {
  switches : int;
  relocations : int;
  total_downtime : float;
  worst_downtime : float;
  port_busy : float;
  makespan : float;
}

let frames_of_area part rect =
  let frames = Grid.frames part.Partition.grid in
  Resource.demand_frames ~frames (Compat.covered_demand part rect)

let write_time config ~frames =
  float_of_int (frames * config.words_per_frame) /. config.port_words_per_us

(* Per-region run-time state: the active area and the pool of reserved
   compatible areas currently free. *)
type region_state = { mutable active : Rect.t; mutable free_pool : Rect.t list }

let simulate ?(config = default_config) part (spec : Spec.t) plan policy
    requests =
  let states = Hashtbl.create 8 in
  let missing = ref None in
  List.iter
    (fun (r : Spec.region) ->
      match Floorplan.rect_of plan r.Spec.r_name with
      | Some rect ->
        let pool =
          List.map
            (fun f -> f.Floorplan.fc_rect)
            (Floorplan.fc_for plan r.Spec.r_name)
        in
        Hashtbl.replace states r.Spec.r_name { active = rect; free_pool = pool }
      | None ->
        if !missing = None then missing := Some r.Spec.r_name)
    spec.Spec.regions;
  let bad_request = ref None in
  List.iter
    (fun req ->
      if (not (Hashtbl.mem states req.r_region)) && !bad_request = None then
        bad_request := Some req.r_region)
    requests;
  match (!missing, !bad_request) with
  | Some r, _ -> Error (Printf.sprintf "region %s is not placed" r)
  | _, Some r -> Error (Printf.sprintf "request for unknown region %s" r)
  | None, None ->
    let requests = List.sort (fun a b -> compare a.at b.at) requests in
    let port_free = ref 0. in
    let events = ref [] in
    let port_busy = ref 0. in
    List.iter
      (fun req ->
        let st = Hashtbl.find states req.r_region in
        let start = max req.at !port_free in
        let use_area, relocated =
          match policy with
          | Reload_in_place -> (st.active, false)
          | Relocate_prefetch -> (
            match st.free_pool with
            | a :: rest ->
              st.free_pool <- rest;
              (a, true)
            | [] -> (st.active, false))
        in
        let frames = frames_of_area part use_area in
        let wt = write_time config ~frames in
        let write_done = start +. wt in
        port_busy := !port_busy +. wt;
        port_free := write_done;
        let active_at, downtime =
          if relocated then begin
            (* the module keeps running during the write; it only stalls
               for the handover, then its old area becomes free *)
            let t = write_done +. config.swap_overhead_us in
            let old_area = st.active in
            st.active <- use_area;
            st.free_pool <- st.free_pool @ [ old_area ];
            (t, config.swap_overhead_us)
          end
          else
            (* the module is stopped while its own area is rewritten *)
            (write_done, write_done -. req.at)
        in
        events :=
          {
            e_request = req;
            e_port_start = start;
            e_active = active_at;
            e_downtime = downtime;
            e_area = use_area;
            e_relocated = relocated;
          }
          :: !events)
      requests;
    let events = List.rev !events in
    let stats =
      List.fold_left
        (fun acc e ->
          {
            acc with
            switches = acc.switches + 1;
            relocations = (acc.relocations + if e.e_relocated then 1 else 0);
            total_downtime = acc.total_downtime +. e.e_downtime;
            worst_downtime = max acc.worst_downtime e.e_downtime;
            makespan = max acc.makespan e.e_active;
          })
        {
          switches = 0;
          relocations = 0;
          total_downtime = 0.;
          worst_downtime = 0.;
          port_busy = !port_busy;
          makespan = 0.;
        }
        events
    in
    Ok (events, stats)

let stored_bitstreams part plan ~modes_per_region ~relocatable =
  ignore part;
  List.fold_left
    (fun acc (region, nmodes) ->
      let locations = 1 + List.length (Floorplan.fc_for plan region) in
      acc + (nmodes * if relocatable then 1 else locations))
    0 modes_per_region
