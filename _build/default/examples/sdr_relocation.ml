(* The paper's Section VI case study end to end: the software-defined
   radio design on the Virtex-5 FX70T model — feasibility analysis,
   SDR2/SDR3 floorplans, and the baseline comparison.

     dune exec examples/sdr_relocation.exe *)

open Device

let () =
  let part = Partition.columnar_exn Devices.virtex5_fx70t in
  Format.printf "Device: %s (%d portions, %d forbidden areas)@.@."
    (Grid.name Devices.virtex5_fx70t)
    (Array.length part.Partition.portions)
    (List.length part.Partition.forbidden);

  (* Table I *)
  Format.printf "Resource requirements (Table I):@.";
  List.iter
    (fun (name, c, b, d, f) ->
      Format.printf "  %-18s %3d CLB  %2d BRAM  %2d DSP  %5d frames@." name c b d f)
    (Sdr.table1 ~frames:(Grid.frames Devices.virtex5_fx70t));

  (* Which regions can be duplicated at all? *)
  Format.printf "@.Feasibility of one free-compatible area per region:@.";
  List.iter
    (fun name ->
      let r =
        Search.Engine.feasible
          ~options:{ Search.Engine.default_options with time_limit = Some 60. }
          part (Sdr.feasibility_variant name)
      in
      Format.printf "  %-18s %s@." name
        (match (r.Search.Engine.plan, r.Search.Engine.optimal) with
        | Some _, _ -> "relocatable"
        | None, true -> "not relocatable (proven)"
        | None, false -> "unknown"))
    Sdr.module_names;

  (* SDR2: two reserved areas per relocatable region *)
  Format.printf "@.SDR2 floorplan (2 areas per relocatable region):@.";
  let r2 =
    Search.Engine.solve
      ~options:{ Search.Engine.default_options with time_limit = Some 60. }
      part Sdr.sdr2
  in
  (match r2.Search.Engine.plan with
  | Some plan ->
    Format.printf "wasted frames %d (base design: 90 -> relocation is free here)@."
      (Floorplan.wasted_frames part Sdr.sdr2 plan);
    print_endline (Floorplan.render part plan)
  | None -> print_endline "  no solution");

  (* Baseline comparison *)
  let vf = Baselines.Vipin_fahmy.solve part Sdr.design in
  Format.printf "@.Tessellation heuristic ([8]-style) on the same design: %s wasted frames@."
    (match vf.Baselines.Vipin_fahmy.wasted with
    | Some w -> string_of_int w
    | None -> "-")
