(* Bitstream relocation end to end: floorplan with a reserved
   free-compatible area, synthesize the module's partial bitstream, and
   relocate it into the reserved area with the REPLICA/BiRF-style filter
   (address rewrite + CRC recompute).

     dune exec examples/bitstream_relocation.exe *)

open Device

let () =
  let part = Partition.columnar_exn Devices.mini in
  let spec =
    Spec.make ~name:"reloc-demo"
      ~relocs:[ { Spec.target = "task"; copies = 1; mode = Spec.Hard } ]
      [ { Spec.r_name = "task"; demand = [ (Resource.Clb, 2); (Resource.Bram, 1) ] } ]
  in
  let plan =
    match (Search.Engine.solve part spec).Search.Engine.plan with
    | Some p -> p
    | None -> failwith "no floorplan"
  in
  print_endline (Floorplan.render part plan);
  let src = Option.get (Floorplan.rect_of plan "task") in
  let dst =
    match Floorplan.fc_for plan "task" with
    | f :: _ -> f.Floorplan.fc_rect
    | [] -> failwith "no reserved area"
  in
  Format.printf "source area %s, reserved target %s@." (Rect.to_string src)
    (Rect.to_string dst);

  (* the module's partial bitstream at the source *)
  let img = Bitstream.Image.synthesize ~seed:2026 part src in
  let wire = Bitstream.Image.serialize img in
  Format.printf "partial bitstream: %d frames, %d bytes, CRC32 %08lx@."
    (Bitstream.Image.frame_count img)
    (Bytes.length wire) (Bitstream.Image.crc img);

  (* relocate on the wire format *)
  (match Bitstream.Relocate.relocate_serialized part ~src ~dst wire with
  | Error e -> Format.printf "relocation failed: %s@." e
  | Ok wire' -> (
    match Bitstream.Image.parse wire' with
    | Error e -> Format.printf "relocated stream corrupt: %s@." e
    | Ok img' ->
      Format.printf "relocated: CRC32 %08lx, payload preserved: %b@."
        (Bitstream.Image.crc img')
        (Bitstream.Image.payload_equal img img');
      (* relocating is exactly re-synthesizing at the target, because
         compatible areas carry identical configuration layouts *)
      let direct = Bitstream.Image.synthesize ~seed:2026 part dst in
      Format.printf "equals direct synthesis at target: %b@."
        (Bitstream.Image.equal img' direct)));

  (* and an incompatible target is refused by the filter *)
  let bad = Rect.make ~x:2 ~y:1 ~w:src.Rect.w ~h:src.Rect.h in
  match Bitstream.Relocate.relocate part ~src ~dst:bad img with
  | Error e ->
    Format.printf "incompatible target %s refused: %a@." (Rect.to_string bad)
      Bitstream.Relocate.pp_error e
  | Ok _ -> Format.printf "BUG: incompatible relocation accepted@."
