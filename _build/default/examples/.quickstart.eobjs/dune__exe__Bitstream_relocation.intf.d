examples/bitstream_relocation.mli:
