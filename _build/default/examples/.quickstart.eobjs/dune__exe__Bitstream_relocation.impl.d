examples/bitstream_relocation.ml: Bitstream Bytes Device Devices Floorplan Format Option Partition Rect Resource Search Spec
