examples/quickstart.mli:
