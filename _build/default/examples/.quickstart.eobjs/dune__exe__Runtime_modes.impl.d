examples/runtime_modes.ml: Device Devices Format List Partition Rect Runtime Sdr Search
