examples/sdr_relocation.mli:
