examples/sdr_relocation.ml: Array Baselines Device Devices Floorplan Format Grid List Partition Sdr Search
