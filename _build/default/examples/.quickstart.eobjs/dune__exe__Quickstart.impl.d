examples/quickstart.ml: Device Devices Floorplan Format Grid Partition Resource Rfloor Search Spec
