examples/partitioning.mli:
