examples/runtime_modes.mli:
