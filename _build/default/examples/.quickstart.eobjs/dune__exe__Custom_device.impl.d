examples/custom_device.ml: Device Filename Floorplan Format Grid List Partition Rect Resource Rfloor Search Spec String
