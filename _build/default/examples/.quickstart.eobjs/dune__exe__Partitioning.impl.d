examples/partitioning.ml: Device Devices Format Grid Partition Rect
