(* What do the reserved free-compatible areas buy at run time?

   Floorplan the SDR2 design, then replay a burst of mode switches on
   the relocatable modules under both policies: in-place reloads
   (no relocation) vs prefetch-into-reserved-area + swap.

     dune exec examples/runtime_modes.exe *)

open Device

let () =
  let part = Partition.columnar_exn Devices.virtex5_fx70t in
  let plan =
    match
      (Search.Engine.solve
         ~options:{ Search.Engine.default_options with time_limit = Some 60. }
         part Sdr.sdr2)
        .Search.Engine.plan
    with
    | Some p -> p
    | None -> failwith "no SDR2 floorplan"
  in
  (* a burst of mode switches on the relocatable modules, 50 us apart *)
  let requests =
    List.concat
      (List.mapi
         (fun i region ->
           [
             { Runtime.Reconfig.at = 50. *. float_of_int i; r_region = region; r_mode = "alt" };
             { Runtime.Reconfig.at = 500. +. (50. *. float_of_int i); r_region = region; r_mode = "base" };
           ])
         Sdr.relocatable)
  in
  let run label policy =
    match Runtime.Reconfig.simulate part Sdr.sdr2 plan policy requests with
    | Error e -> failwith e
    | Ok (events, stats) ->
      Format.printf "@.%s:@." label;
      List.iter
        (fun (e : Runtime.Reconfig.event) ->
          Format.printf
            "  t=%6.1fus %-18s -> %-5s written to %s in %s, module stalled %.1fus@."
            e.Runtime.Reconfig.e_request.Runtime.Reconfig.at
            e.Runtime.Reconfig.e_request.Runtime.Reconfig.r_region
            e.Runtime.Reconfig.e_request.Runtime.Reconfig.r_mode
            (Rect.to_string e.Runtime.Reconfig.e_area)
            (if e.Runtime.Reconfig.e_relocated then "a reserved area" else "place")
            e.Runtime.Reconfig.e_downtime)
        events;
      Format.printf
        "  => total downtime %.1fus, worst %.1fus, port busy %.1fus@."
        stats.Runtime.Reconfig.total_downtime
        stats.Runtime.Reconfig.worst_downtime stats.Runtime.Reconfig.port_busy;
      stats
  in
  let s1 = run "Reload in place (no relocation)" Runtime.Reconfig.Reload_in_place in
  let s2 = run "Prefetch into reserved areas" Runtime.Reconfig.Relocate_prefetch in
  Format.printf "@.downtime reduction: %.0fx@."
    (s1.Runtime.Reconfig.total_downtime /. max 1e-9 s2.Runtime.Reconfig.total_downtime);

  (* design re-use: bitstreams that must be stored for 4 modes/module *)
  let modes = List.map (fun r -> (r, 4)) Sdr.relocatable in
  let without =
    Runtime.Reconfig.stored_bitstreams part plan ~modes_per_region:modes
      ~relocatable:false
  in
  let with_ =
    Runtime.Reconfig.stored_bitstreams part plan ~modes_per_region:modes
      ~relocatable:true
  in
  Format.printf
    "stored bitstreams for 4 modes per relocatable module: %d without the \
     relocation filter, %d with it@."
    without with_
