bench/main.mli:
