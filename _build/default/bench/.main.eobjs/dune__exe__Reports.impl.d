bench/reports.ml: Array Baselines Compat Device Devices Floorplan Format Grid Lazy List Milp Partition Printf Resource Rfloor Runtime Sdr Search Spec String Sys
