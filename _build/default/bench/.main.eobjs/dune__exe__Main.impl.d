bench/main.ml: Analyze Array Baselines Bechamel Benchmark Bitstream Device Hashtbl Instance Lazy List Measure Printf Reports Rfloor Sdr Search Staged Sys Test Time Toolkit
